package jvm

import (
	"fmt"

	"repro/internal/bytecode"
	"repro/internal/classfile"
	"repro/internal/descriptor"
)

// Verification type domain. The verifier performs the inference-style
// dataflow analysis of JVMS §4.10.2 (the pre-StackMapTable algorithm,
// which all five simulated VMs can apply to any version): abstract
// operand stacks and local variable arrays over a small type lattice.
type vtKind byte

const (
	vtUndef    vtKind = 0   // unset local slot
	vtInt      vtKind = 'I' // int family (boolean/byte/char/short/int)
	vtFloat    vtKind = 'F'
	vtLong     vtKind = 'J' // first slot
	vtDouble   vtKind = 'D' // first slot
	vtWide2    vtKind = '2' // second slot of long/double
	vtRef      vtKind = 'A' // reference; cls names the class if known
	vtNull     vtKind = 'N' // null constant
	vtUninit   vtKind = 'U' // uninitialized object from `new` at pc
	vtRetAddr  vtKind = 'R' // jsr return address
	vtConflict vtKind = 'X' // merge conflict; unusable
)

// vt is one abstract slot value.
type vt struct {
	kind vtKind
	cls  string // internal class name for vtRef/vtUninit when known
	pc   int    // allocation site for vtUninit (-1 = uninitializedThis)
}

func (v vt) isWideFirst() bool { return v.kind == vtLong || v.kind == vtDouble }

func (v vt) isRefLike() bool {
	return v.kind == vtRef || v.kind == vtNull || v.kind == vtUninit
}

func (v vt) String() string {
	switch v.kind {
	case vtUndef:
		return "_"
	case vtRef:
		if v.cls == "" {
			return "ref"
		}
		return "ref(" + v.cls + ")"
	case vtNull:
		return "null"
	case vtUninit:
		if v.pc < 0 {
			return "uninitThis"
		}
		return fmt.Sprintf("uninit(%s@%d)", v.cls, v.pc)
	case vtConflict:
		return "top"
	default:
		return string(rune(v.kind))
	}
}

func refOf(cls string) vt { return vt{kind: vtRef, cls: cls} }

// typeOfDesc maps a descriptor type to its verification slot value(s).
// Plain class references carry their internal name; arrays keep the
// bracketed descriptor form (matching anewarray/newarray results).
func typeOfDesc(t descriptor.Type) vt {
	if t.IsReference() {
		if t.Dims == 0 && t.Kind == 'L' {
			return refOf(t.ClassName)
		}
		return refOf(t.String())
	}
	switch t.Kind {
	case 'J':
		return vt{kind: vtLong}
	case 'D':
		return vt{kind: vtDouble}
	case 'F':
		return vt{kind: vtFloat}
	default:
		return vt{kind: vtInt}
	}
}

// frame is one abstract machine state.
type frame struct {
	stack  []vt
	locals []vt
}

// copyFrom overwrites f with src's state, reusing f's slice capacity.
func (f *frame) copyFrom(src *frame) *frame {
	f.stack = append(f.stack[:0], src.stack...)
	f.locals = append(f.locals[:0], src.locals...)
	return f
}

// verifyError is the internal signal carrying a verification failure.
type verifyError struct {
	errName string
	msg     string
}

func (e *verifyError) Error() string { return e.errName + ": " + e.msg }

// verifier runs the dataflow analysis over a single method.
type verifier struct {
	vm   *VM
	ex   *execState
	m    *classfile.Member
	code *classfile.CodeAttr
	ins  []*bytecode.Instruction
	// pcIndex maps a byte PC to the instruction index; targets caches
	// Targets() per instruction. Both are shared, read-only views from
	// the VM's decode cache.
	pcIndex map[int]int
	targets [][]int
	// in holds the merged entry frame per instruction index.
	in   []*frame
	work []int
	md   descriptor.Method
	err  *verifyError
	// scratch is the working frame step simulates into, reused across
	// worklist steps so the per-step clone of the entry state does not
	// allocate (successor merges copy out of it, never retain it).
	scratch frame
}

// verifyScratch recycles the verifier's working storage across
// runVerifier calls on one VM: the verifier value itself, a free list
// of frames (whose stack/locals slices keep their capacity), the
// per-instruction entry-frame slice, and the worklist. Nothing a run
// produces retains these — Outcomes carry only formatted strings — so
// the next run can overwrite them freely.
type verifyScratch struct {
	v      verifier
	frames []*frame
	in     []*frame
	work   []int
}

// getFrame pops a pooled frame or allocates a fresh one. Callers must
// overwrite stack and locals before reading them.
func (s *verifyScratch) getFrame() *frame {
	if n := len(s.frames); n > 0 {
		f := s.frames[n-1]
		s.frames = s.frames[:n-1]
		return f
	}
	return &frame{}
}

func (s *verifyScratch) putFrame(f *frame) {
	s.frames = append(s.frames, f)
}

// release harvests v's frames back into the free list and detaches v
// from the method it verified, so the scratch retains slice capacity
// but no pointers into the verified class.
func (s *verifyScratch) release(v *verifier) {
	if v.in != nil {
		for i, f := range v.in {
			if f != nil {
				s.frames = append(s.frames, f)
				v.in[i] = nil
			}
		}
		s.in = v.in[:0]
	}
	if v.work != nil {
		s.work = v.work[:0]
	}
	v.ex, v.m, v.code = nil, nil, nil
	v.ins, v.pcIndex, v.targets = nil, nil, nil
	v.in, v.work, v.err = nil, nil, nil
	v.md = descriptor.Method{}
}

// runVerifier verifies one method body; nil result means it passed.
func (vm *VM) runVerifier(ex *execState, m *classfile.Member) *Outcome {
	vm.st(pVerifyEnter)
	s := &vm.vscratch
	v := &s.v
	sc := v.scratch // keep the step frame's capacity across runs
	*v = verifier{vm: vm, ex: ex, m: m, code: m.Code(), scratch: sc}
	out := v.run()
	s.release(v)
	if out == nil {
		vm.st(pVerifyOk)
	} else {
		vm.st(pVerifyRejected)
		vm.stVerifyErr(out.Error)
	}
	return out
}

func (v *verifier) fail(errName, format string, args ...any) {
	if v.err == nil {
		v.err = &verifyError{errName: errName, msg: fmt.Sprintf(format, args...)}
	}
}

func (v *verifier) run() *Outcome {
	vm := v.vm
	mname := v.m.Name(v.ex.f.Pool)
	mdesc := v.m.Descriptor(v.ex.f.Pool)

	if vm.br(bVerifyCodeempty, len(v.code.Code) == 0) {
		return &Outcome{Phase: PhaseLinking, Error: ErrClassFormat,
			Message: fmt.Sprintf("method %s has an empty code array", mname)}
	}

	md, err := descriptor.ParseMethod(mdesc)
	if vm.br(bVerifyDesc, err != nil) {
		return &Outcome{Phase: PhaseLinking, Error: ErrClassFormat,
			Message: fmt.Sprintf("method %s has malformed descriptor", mname)}
	}
	v.md = md

	dec := vm.decodeCode(v.code.Code)
	if vm.br(bVerifyDecodable, dec.err != nil) {
		return &Outcome{Phase: PhaseLinking, Error: ErrVerify,
			Message: fmt.Sprintf("method %s: %v", mname, dec.err)}
	}
	ins := dec.ins
	v.ins = ins
	v.pcIndex = dec.pcIndex
	v.targets = dec.targets

	// Branch targets must land on instruction boundaries.
	for i, in := range ins {
		for _, t := range v.targets[i] {
			if _, ok := v.pcIndex[t]; vm.br(bVerifyBranchtarget, !ok) {
				return &Outcome{Phase: PhaseLinking, Error: ErrVerify,
					Message: fmt.Sprintf("method %s: branch into the middle of an instruction (pc %d)", mname, t)}
			}
		}
		if (in.Op == bytecode.Jsr || in.Op == bytecode.JsrW || in.Op == bytecode.Ret ||
			(in.Op == bytecode.Wide && in.WideOp == bytecode.Ret)) &&
			v.vm.Spec.Policy.ForbidJsrRet && v.ex.f.Major >= 51 {
			vm.st(pVerifyJsrret)
			return &Outcome{Phase: PhaseLinking, Error: ErrVerify,
				Message: fmt.Sprintf("method %s uses jsr/ret in a version %d classfile", mname, v.ex.f.Major)}
		}
	}

	// Exception handler sanity.
	for _, h := range v.code.Handlers {
		vm.st(pVerifyHandler)
		_, okS := v.pcIndex[int(h.StartPC)]
		_, okH := v.pcIndex[int(h.HandlerPC)]
		endOK := int(h.EndPC) == len(v.code.Code) || func() bool { _, ok := v.pcIndex[int(h.EndPC)]; return ok }()
		if vm.br(bVerifyHandlerBounds, !okS || !okH || !endOK || h.StartPC >= h.EndPC) {
			return &Outcome{Phase: PhaseLinking, Error: ErrClassFormat,
				Message: fmt.Sprintf("method %s has an invalid exception handler range", mname)}
		}
		if h.CatchType != 0 {
			cname, ok := v.ex.f.Pool.ClassName(h.CatchType)
			if vm.br(bVerifyHandlerCatchcp, !ok) {
				return &Outcome{Phase: PhaseLinking, Error: ErrClassFormat,
					Message: fmt.Sprintf("method %s catch type #%d is not a class", mname, h.CatchType)}
			}
			kind, ci := v.ex.resolveClass(cname)
			if kind == kindMissing {
				if vm.br(bVerifyHandlerCatchmissing, v.vm.Spec.Policy.EagerResolution) {
					return &Outcome{Phase: PhaseLinking, Error: ErrNoClassDef, Message: cname}
				}
			} else if kind == kindPlatform && ci != nil {
				if vm.br(bVerifyHandlerCatchthrowable, !v.vm.Env.IsThrowable(cname)) {
					return &Outcome{Phase: PhaseLinking, Error: ErrVerify,
						Message: fmt.Sprintf("method %s catches non-Throwable %s", mname, cname)}
				}
			}
		}
	}

	// Type-checking verification (§4.10.1): presets that use the
	// StackMapTable-driven verifier reject undecodable tables outright.
	// Checked with plain conditionals — no coverage probes — so the
	// interned probe universe is unchanged by this late addition.
	if v.vm.Spec.Policy.VerifyTypeChecking && v.ex.f.Major >= 50 {
		for _, a := range v.code.Attributes {
			if t, ok := a.(*classfile.StackMapTableAttr); ok {
				if _, err := classfile.DecodeStackMap(t); err != nil {
					return &Outcome{Phase: PhaseLinking, Error: ErrClassFormat,
						Message: fmt.Sprintf("method %s has an undecodable StackMapTable: %v", mname, err)}
				}
				break
			}
		}
	}

	// Initial frame (pooled; mergeInto copies it, so it goes straight
	// back to the pool afterwards).
	init := vm.vscratch.getFrame()
	init.stack = init.stack[:0]
	if cap(init.locals) < int(v.code.MaxLocals) {
		init.locals = make([]vt, v.code.MaxLocals)
	} else {
		init.locals = init.locals[:v.code.MaxLocals]
		clear(init.locals)
	}
	slot := 0
	isStatic := v.m.AccessFlags.Has(classfile.AccStatic)
	if !isStatic {
		if slot >= len(init.locals) {
			vm.vscratch.putFrame(init)
			return v.outcome(ErrVerify, "max_locals too small for receiver")
		}
		if mname == "<init>" {
			init.locals[slot] = vt{kind: vtUninit, cls: v.ex.name, pc: -1}
		} else {
			init.locals[slot] = refOf(v.ex.name)
		}
		slot++
	}
	for _, pt := range md.Params {
		t := typeOfDesc(pt)
		if slot+t.kindSlots() > len(init.locals) {
			vm.st(pVerifyLocalsoverflow)
			vm.vscratch.putFrame(init)
			return v.outcome(ErrVerify, "max_locals %d too small for parameters of %s%s", v.code.MaxLocals, mname, mdesc)
		}
		init.locals[slot] = t
		slot++
		if t.isWideFirst() {
			init.locals[slot] = vt{kind: vtWide2}
			slot++
		}
	}

	if cap(vm.vscratch.in) >= len(ins) {
		v.in = vm.vscratch.in[:len(ins)] // entries were nilled at release
	} else {
		v.in = make([]*frame, len(ins))
	}
	v.work = vm.vscratch.work[:0]
	v.mergeInto(0, init)
	vm.vscratch.putFrame(init)

	for len(v.work) > 0 && v.err == nil {
		idx := v.work[len(v.work)-1]
		v.work = v.work[:len(v.work)-1]
		v.step(idx)
	}
	if v.err != nil {
		return v.outcome(v.err.errName, "method %s%s: %s", mname, mdesc, v.err.msg)
	}
	return nil
}

func (v *verifier) outcome(errName, format string, args ...any) *Outcome {
	o := reject(PhaseLinking, errName, format, args...)
	return &o
}

func (t vt) kindSlots() int {
	if t.isWideFirst() {
		return 2
	}
	return 1
}

// mergeInto merges a frame into instruction idx's entry state and
// enqueues it when the state changed.
func (v *verifier) mergeInto(idx int, f *frame) {
	if v.err != nil {
		return
	}
	cur := v.in[idx]
	if cur == nil {
		v.in[idx] = v.vm.vscratch.getFrame().copyFrom(f)
		v.work = append(v.work, idx)
		return
	}
	v.vm.st(pVerifyMerge)
	if v.vm.br(bVerifyMergeDepth, len(cur.stack) != len(f.stack)) {
		v.fail(ErrVerify, "inconsistent stack depth at merge (pc %d): %d vs %d",
			v.ins[idx].PC, len(cur.stack), len(f.stack))
		return
	}
	changed := false
	for i := range cur.stack {
		m, ch := v.mergeSlot(cur.stack[i], f.stack[i], true)
		if v.err != nil {
			return
		}
		if ch {
			cur.stack[i] = m
			changed = true
		}
	}
	for i := range cur.locals {
		m, ch := v.mergeSlot(cur.locals[i], f.locals[i], false)
		if v.err != nil {
			return
		}
		if ch {
			cur.locals[i] = m
			changed = true
		}
	}
	if changed {
		v.work = append(v.work, idx)
	}
}

// mergeSlot merges two abstract values. onStack selects the stricter
// stack rules (conflicts on the stack are verification errors; in
// locals they just poison the slot).
func (v *verifier) mergeSlot(a, b vt, onStack bool) (vt, bool) {
	if a == b {
		return a, false
	}
	p := &v.vm.Spec.Policy
	conflict := func(reason string) (vt, bool) {
		if onStack {
			v.vm.st(pVerifyMergeStackconflict)
			v.fail(ErrVerify, "unmergeable stack values (%s vs %s): %s", a, b, reason)
			return a, false
		}
		return vt{kind: vtConflict}, a.kind != vtConflict
	}
	// Reference-family merging.
	if a.isRefLike() && b.isRefLike() {
		// Uninitialized values merging with anything else: GIJ flags it
		// (Problem 2); other VMs widen to an unknown reference.
		if a.kind == vtUninit || b.kind == vtUninit {
			if a.kind == vtUninit && b.kind == vtUninit && a.pc == b.pc && a.cls == b.cls {
				return a, false
			}
			if p.VerifyUninitMerge {
				v.vm.st(pVerifyMergeUninit)
				v.fail(ErrVerify, "merging initialized and uninitialized values (%s vs %s)", a, b)
				return a, false
			}
			return refOf(""), true
		}
		if a.kind == vtNull {
			return b, true
		}
		if b.kind == vtNull {
			return a, false
		}
		// Both proper refs with (possibly) known classes.
		if a.cls == b.cls {
			return a, false
		}
		if a.cls == "" || b.cls == "" {
			return refOf(""), a.cls != ""
		}
		sup := v.commonSuper(a.cls, b.cls)
		if p.VerifyStrictStackShape && onStack && sup != a.cls && sup != b.cls {
			// J9's strict dialect: merging unrelated reference types on
			// the stack is a "stack shape inconsistent" failure.
			v.vm.st(pVerifyMergeStackshape)
			v.fail(ErrVerify, "stack shape inconsistent (%s vs %s)", a, b)
			return a, false
		}
		m := refOf(sup)
		return m, m != a
	}
	if a.kind == vtUndef || b.kind == vtUndef {
		return conflict("undefined slot")
	}
	if a.kind != b.kind {
		return conflict("kind mismatch")
	}
	return a, false
}

// commonSuper computes the least common superclass known to the
// environment; Object when unrelated.
func (v *verifier) commonSuper(a, b string) string {
	env := v.vm.Env
	chainOf := func(n string) []string {
		var chain []string
		cur := n
		if cur == v.ex.name {
			chain = append(chain, cur)
			cur = v.ex.f.SuperName()
		}
		for cur != "" {
			chain = append(chain, cur)
			ci, ok := env.Lookup(cur)
			if !ok {
				break
			}
			cur = ci.Super
		}
		return chain
	}
	ca, cb := chainOf(a), chainOf(b)
	inB := make(map[string]bool, len(cb))
	for _, n := range cb {
		inB[n] = true
	}
	for _, n := range ca {
		if inB[n] {
			return n
		}
	}
	return "java/lang/Object"
}

// assignableRef decides whether a value of class `from` can serve where
// `to` is expected, considering the class under test's own hierarchy.
func (ex *execState) assignableRef(from, to string) bool {
	if from == "" || to == "" || from == to || to == "java/lang/Object" {
		return true
	}
	if from == ex.name {
		// The class under test: assignable to its superclass chain and
		// declared interfaces.
		if ex.vm.Env.AssignableTo(ex.f.SuperName(), to) {
			return true
		}
		for _, n := range ex.f.InterfaceNames() {
			if n == to || ex.vm.Env.AssignableTo(n, to) {
				return true
			}
		}
		return false
	}
	if _, ok := ex.vm.Env.Lookup(from); !ok {
		// Unknown class: be permissive; lazy VMs discover at runtime.
		return true
	}
	if _, ok := ex.vm.Env.Lookup(to); !ok {
		return true
	}
	// Interfaces as targets: only check when both sides are known.
	return ex.vm.Env.AssignableTo(from, to)
}

// --- per-instruction simulation ------------------------------------------

type simFrame struct {
	v *verifier
	f *frame
}

func (s *simFrame) push(t vt) {
	if len(s.f.stack) >= int(s.v.code.MaxStack) {
		s.v.vm.st(pVerifyStackoverflow)
		s.v.fail(ErrVerify, "operand stack overflow (max_stack %d)", s.v.code.MaxStack)
		return
	}
	s.f.stack = append(s.f.stack, t)
}

func (s *simFrame) pushWide(t vt) {
	s.push(t)
	s.push(vt{kind: vtWide2})
}

func (s *simFrame) pop() vt {
	if s.v.err != nil {
		return vt{}
	}
	if len(s.f.stack) == 0 {
		s.v.vm.st(pVerifyStackunderflow)
		s.v.fail(ErrVerify, "operand stack underflow")
		return vt{}
	}
	t := s.f.stack[len(s.f.stack)-1]
	s.f.stack = s.f.stack[:len(s.f.stack)-1]
	return t
}

func (s *simFrame) popKind(k vtKind) vt {
	t := s.pop()
	if s.v.err == nil && t.kind != k {
		s.v.vm.st(pVerifyTypemismatch)
		s.v.fail(ErrVerify, "expected %s on stack, found %s", vt{kind: k}, t)
	}
	return t
}

func (s *simFrame) popWide(k vtKind) {
	s.popKind(vtWide2)
	s.popKind(k)
}

func (s *simFrame) popRef() vt {
	t := s.pop()
	if s.v.err == nil && !t.isRefLike() {
		s.v.vm.st(pVerifyRefmismatch)
		s.v.fail(ErrVerify, "expected a reference on stack, found %s", t)
	}
	return t
}

// popDesc pops a value matching descriptor type dt, applying the
// strict-assignability dialect when enabled.
func (s *simFrame) popDesc(dt descriptor.Type, ctx string) {
	if dt.IsWide() {
		s.popWide(vtKind(dt.Kind))
		return
	}
	if dt.IsReference() {
		got := s.popRef()
		if s.v.err == nil && s.v.vm.Spec.Policy.VerifyRefAssignability &&
			got.kind == vtRef && got.cls != "" && dt.Dims == 0 && dt.Kind == 'L' {
			if s.v.vm.br(bVerifyAssignable, !s.v.ex.assignableRef(got.cls, dt.ClassName)) {
				s.v.fail(ErrVerify, "%s: %s is not assignable to %s", ctx, got.cls, dt.ClassName)
			}
		}
		return
	}
	switch dt.Kind {
	case 'F':
		s.popKind(vtFloat)
	default:
		s.popKind(vtInt)
	}
}

func (s *simFrame) getLocal(i int, k vtKind) vt {
	if i < 0 || i >= len(s.f.locals) {
		s.v.vm.st(pVerifyLocaloob)
		s.v.fail(ErrVerify, "local variable index %d out of bounds (max_locals %d)", i, len(s.f.locals))
		return vt{}
	}
	t := s.f.locals[i]
	if k == vtRef {
		if !t.isRefLike() {
			s.v.vm.st(pVerifyLocaltype)
			s.v.fail(ErrVerify, "local %d holds %s, expected a reference", i, t)
		}
	} else if t.kind != k {
		s.v.vm.st(pVerifyLocaltype)
		s.v.fail(ErrVerify, "local %d holds %s, expected %s", i, t, vt{kind: k})
	}
	return t
}

func (s *simFrame) setLocal(i int, t vt) {
	n := 1
	if t.isWideFirst() {
		n = 2
	}
	if i < 0 || i+n > len(s.f.locals) {
		s.v.vm.st(pVerifyLocaloob)
		s.v.fail(ErrVerify, "local variable index %d out of bounds (max_locals %d)", i, len(s.f.locals))
		return
	}
	// Storing into the second slot of a wide value invalidates the first.
	if i > 0 && s.f.locals[i].kind == vtWide2 && s.f.locals[i-1].isWideFirst() {
		s.f.locals[i-1] = vt{kind: vtConflict}
	}
	s.f.locals[i] = t
	if n == 2 {
		s.f.locals[i+1] = vt{kind: vtWide2}
	} else if i+1 < len(s.f.locals) && s.f.locals[i+1].kind == vtWide2 {
		// no-op: the old wide pair was already broken above if needed
		_ = i
	}
}

// step simulates instruction idx against its merged entry frame and
// propagates the result to all successors.
func (v *verifier) step(idx int) {
	in := v.ins[idx]
	fr := v.scratch.copyFrom(v.in[idx])
	s := &simFrame{v: v, f: fr}
	vm := v.vm
	vm.st(verifyOpProbes[byte(in.Op)])

	op := in.Op
	wide := false
	if op == bytecode.Wide {
		op = in.WideOp
		wide = true
		_ = wide
	}

	switch op {
	case bytecode.Nop, bytecode.Breakpoint, bytecode.Impdep1, bytecode.Impdep2:
	case bytecode.AconstNull:
		s.push(vt{kind: vtNull})
	case bytecode.IconstM1, bytecode.Iconst0, bytecode.Iconst1, bytecode.Iconst2,
		bytecode.Iconst3, bytecode.Iconst4, bytecode.Iconst5, bytecode.Bipush, bytecode.Sipush:
		s.push(vt{kind: vtInt})
	case bytecode.Lconst0, bytecode.Lconst1:
		s.pushWide(vt{kind: vtLong})
	case bytecode.Fconst0, bytecode.Fconst1, bytecode.Fconst2:
		s.push(vt{kind: vtFloat})
	case bytecode.Dconst0, bytecode.Dconst1:
		s.pushWide(vt{kind: vtDouble})
	case bytecode.Ldc, bytecode.LdcW:
		v.simLdc(s, in, false)
	case bytecode.Ldc2W:
		v.simLdc(s, in, true)

	case bytecode.Iload:
		s.getLocal(int(in.Local), vtInt)
		s.push(vt{kind: vtInt})
	case bytecode.Lload:
		s.getLocal(int(in.Local), vtLong)
		s.pushWide(vt{kind: vtLong})
	case bytecode.Fload:
		s.getLocal(int(in.Local), vtFloat)
		s.push(vt{kind: vtFloat})
	case bytecode.Dload:
		s.getLocal(int(in.Local), vtDouble)
		s.pushWide(vt{kind: vtDouble})
	case bytecode.Aload:
		t := s.getLocal(int(in.Local), vtRef)
		s.push(t)
	case bytecode.Iload0, bytecode.Iload1, bytecode.Iload2, bytecode.Iload3:
		s.getLocal(int(op-bytecode.Iload0), vtInt)
		s.push(vt{kind: vtInt})
	case bytecode.Lload0, bytecode.Lload1, bytecode.Lload2, bytecode.Lload3:
		s.getLocal(int(op-bytecode.Lload0), vtLong)
		s.pushWide(vt{kind: vtLong})
	case bytecode.Fload0, bytecode.Fload1, bytecode.Fload2, bytecode.Fload3:
		s.getLocal(int(op-bytecode.Fload0), vtFloat)
		s.push(vt{kind: vtFloat})
	case bytecode.Dload0, bytecode.Dload1, bytecode.Dload2, bytecode.Dload3:
		s.getLocal(int(op-bytecode.Dload0), vtDouble)
		s.pushWide(vt{kind: vtDouble})
	case bytecode.Aload0, bytecode.Aload1, bytecode.Aload2, bytecode.Aload3:
		t := s.getLocal(int(op-bytecode.Aload0), vtRef)
		s.push(t)

	case bytecode.Istore:
		s.popKind(vtInt)
		s.setLocal(int(in.Local), vt{kind: vtInt})
	case bytecode.Lstore:
		s.popWide(vtLong)
		s.setLocal(int(in.Local), vt{kind: vtLong})
	case bytecode.Fstore:
		s.popKind(vtFloat)
		s.setLocal(int(in.Local), vt{kind: vtFloat})
	case bytecode.Dstore:
		s.popWide(vtDouble)
		s.setLocal(int(in.Local), vt{kind: vtDouble})
	case bytecode.Astore:
		t := s.pop()
		if v.err == nil && !t.isRefLike() && t.kind != vtRetAddr {
			v.fail(ErrVerify, "astore of non-reference %s", t)
		}
		s.setLocal(int(in.Local), t)
	case bytecode.Istore0, bytecode.Istore1, bytecode.Istore2, bytecode.Istore3:
		s.popKind(vtInt)
		s.setLocal(int(op-bytecode.Istore0), vt{kind: vtInt})
	case bytecode.Lstore0, bytecode.Lstore1, bytecode.Lstore2, bytecode.Lstore3:
		s.popWide(vtLong)
		s.setLocal(int(op-bytecode.Lstore0), vt{kind: vtLong})
	case bytecode.Fstore0, bytecode.Fstore1, bytecode.Fstore2, bytecode.Fstore3:
		s.popKind(vtFloat)
		s.setLocal(int(op-bytecode.Fstore0), vt{kind: vtFloat})
	case bytecode.Dstore0, bytecode.Dstore1, bytecode.Dstore2, bytecode.Dstore3:
		s.popWide(vtDouble)
		s.setLocal(int(op-bytecode.Dstore0), vt{kind: vtDouble})
	case bytecode.Astore0, bytecode.Astore1, bytecode.Astore2, bytecode.Astore3:
		t := s.pop()
		if v.err == nil && !t.isRefLike() && t.kind != vtRetAddr {
			v.fail(ErrVerify, "astore of non-reference %s", t)
		}
		s.setLocal(int(op-bytecode.Astore0), t)

	case bytecode.Iaload, bytecode.Baload, bytecode.Caload, bytecode.Saload:
		s.popKind(vtInt)
		s.popRef()
		s.push(vt{kind: vtInt})
	case bytecode.Laload:
		s.popKind(vtInt)
		s.popRef()
		s.pushWide(vt{kind: vtLong})
	case bytecode.Faload:
		s.popKind(vtInt)
		s.popRef()
		s.push(vt{kind: vtFloat})
	case bytecode.Daload:
		s.popKind(vtInt)
		s.popRef()
		s.pushWide(vt{kind: vtDouble})
	case bytecode.Aaload:
		s.popKind(vtInt)
		arr := s.popRef()
		s.push(elementOf(arr))
	case bytecode.Iastore, bytecode.Bastore, bytecode.Castore, bytecode.Sastore:
		s.popKind(vtInt)
		s.popKind(vtInt)
		s.popRef()
	case bytecode.Lastore:
		s.popWide(vtLong)
		s.popKind(vtInt)
		s.popRef()
	case bytecode.Fastore:
		s.popKind(vtFloat)
		s.popKind(vtInt)
		s.popRef()
	case bytecode.Dastore:
		s.popWide(vtDouble)
		s.popKind(vtInt)
		s.popRef()
	case bytecode.Aastore:
		s.popRef()
		s.popKind(vtInt)
		s.popRef()

	case bytecode.Pop:
		t := s.pop()
		if v.err == nil && t.kind == vtWide2 {
			v.fail(ErrVerify, "pop splits a two-slot value")
		}
	case bytecode.Pop2:
		s.pop()
		s.pop()
	case bytecode.Dup:
		t := s.pop()
		if v.err == nil && t.kind == vtWide2 {
			v.fail(ErrVerify, "dup of half a two-slot value")
		}
		s.push(t)
		s.push(t)
	case bytecode.DupX1:
		a := s.pop()
		b := s.pop()
		s.push(a)
		s.push(b)
		s.push(a)
	case bytecode.DupX2:
		a := s.pop()
		b := s.pop()
		c := s.pop()
		s.push(a)
		s.push(c)
		s.push(b)
		s.push(a)
	case bytecode.Dup2:
		a := s.pop()
		b := s.pop()
		s.push(b)
		s.push(a)
		s.push(b)
		s.push(a)
	case bytecode.Dup2X1:
		a := s.pop()
		b := s.pop()
		c := s.pop()
		s.push(b)
		s.push(a)
		s.push(c)
		s.push(b)
		s.push(a)
	case bytecode.Dup2X2:
		a := s.pop()
		b := s.pop()
		c := s.pop()
		d := s.pop()
		s.push(b)
		s.push(a)
		s.push(d)
		s.push(c)
		s.push(b)
		s.push(a)
	case bytecode.Swap:
		a := s.pop()
		b := s.pop()
		if v.err == nil && (a.kind == vtWide2 || b.kind == vtWide2) {
			v.fail(ErrVerify, "swap of two-slot values")
		}
		s.push(a)
		s.push(b)

	case bytecode.Iadd, bytecode.Isub, bytecode.Imul, bytecode.Idiv, bytecode.Irem,
		bytecode.Ishl, bytecode.Ishr, bytecode.Iushr, bytecode.Iand, bytecode.Ior, bytecode.Ixor:
		s.popKind(vtInt)
		s.popKind(vtInt)
		s.push(vt{kind: vtInt})
	case bytecode.Ladd, bytecode.Lsub, bytecode.Lmul, bytecode.Ldiv, bytecode.Lrem,
		bytecode.Land, bytecode.Lor, bytecode.Lxor:
		s.popWide(vtLong)
		s.popWide(vtLong)
		s.pushWide(vt{kind: vtLong})
	case bytecode.Lshl, bytecode.Lshr, bytecode.Lushr:
		s.popKind(vtInt)
		s.popWide(vtLong)
		s.pushWide(vt{kind: vtLong})
	case bytecode.Fadd, bytecode.Fsub, bytecode.Fmul, bytecode.Fdiv, bytecode.Frem:
		s.popKind(vtFloat)
		s.popKind(vtFloat)
		s.push(vt{kind: vtFloat})
	case bytecode.Dadd, bytecode.Dsub, bytecode.Dmul, bytecode.Ddiv, bytecode.Drem:
		s.popWide(vtDouble)
		s.popWide(vtDouble)
		s.pushWide(vt{kind: vtDouble})
	case bytecode.Ineg:
		s.popKind(vtInt)
		s.push(vt{kind: vtInt})
	case bytecode.Lneg:
		s.popWide(vtLong)
		s.pushWide(vt{kind: vtLong})
	case bytecode.Fneg:
		s.popKind(vtFloat)
		s.push(vt{kind: vtFloat})
	case bytecode.Dneg:
		s.popWide(vtDouble)
		s.pushWide(vt{kind: vtDouble})
	case bytecode.Iinc:
		s.getLocal(int(in.Local), vtInt)

	case bytecode.I2l:
		s.popKind(vtInt)
		s.pushWide(vt{kind: vtLong})
	case bytecode.I2f:
		s.popKind(vtInt)
		s.push(vt{kind: vtFloat})
	case bytecode.I2d:
		s.popKind(vtInt)
		s.pushWide(vt{kind: vtDouble})
	case bytecode.L2i:
		s.popWide(vtLong)
		s.push(vt{kind: vtInt})
	case bytecode.L2f:
		s.popWide(vtLong)
		s.push(vt{kind: vtFloat})
	case bytecode.L2d:
		s.popWide(vtLong)
		s.pushWide(vt{kind: vtDouble})
	case bytecode.F2i:
		s.popKind(vtFloat)
		s.push(vt{kind: vtInt})
	case bytecode.F2l:
		s.popKind(vtFloat)
		s.pushWide(vt{kind: vtLong})
	case bytecode.F2d:
		s.popKind(vtFloat)
		s.pushWide(vt{kind: vtDouble})
	case bytecode.D2i:
		s.popWide(vtDouble)
		s.push(vt{kind: vtInt})
	case bytecode.D2l:
		s.popWide(vtDouble)
		s.pushWide(vt{kind: vtLong})
	case bytecode.D2f:
		s.popWide(vtDouble)
		s.push(vt{kind: vtFloat})
	case bytecode.I2b, bytecode.I2c, bytecode.I2s:
		s.popKind(vtInt)
		s.push(vt{kind: vtInt})

	case bytecode.Lcmp:
		s.popWide(vtLong)
		s.popWide(vtLong)
		s.push(vt{kind: vtInt})
	case bytecode.Fcmpl, bytecode.Fcmpg:
		s.popKind(vtFloat)
		s.popKind(vtFloat)
		s.push(vt{kind: vtInt})
	case bytecode.Dcmpl, bytecode.Dcmpg:
		s.popWide(vtDouble)
		s.popWide(vtDouble)
		s.push(vt{kind: vtInt})

	case bytecode.Ifeq, bytecode.Ifne, bytecode.Iflt, bytecode.Ifge, bytecode.Ifgt, bytecode.Ifle:
		s.popKind(vtInt)
	case bytecode.IfIcmpeq, bytecode.IfIcmpne, bytecode.IfIcmplt, bytecode.IfIcmpge,
		bytecode.IfIcmpgt, bytecode.IfIcmple:
		s.popKind(vtInt)
		s.popKind(vtInt)
	case bytecode.IfAcmpeq, bytecode.IfAcmpne:
		s.popRef()
		s.popRef()
	case bytecode.Ifnull, bytecode.Ifnonnull:
		s.popRef()
	case bytecode.Goto, bytecode.GotoW:
	case bytecode.Jsr, bytecode.JsrW:
		s.push(vt{kind: vtRetAddr})
	case bytecode.Ret:
		s.getLocal(int(in.Local), vtRetAddr)
	case bytecode.Tableswitch, bytecode.Lookupswitch:
		s.popKind(vtInt)

	case bytecode.Ireturn:
		s.popKind(vtInt)
		v.checkReturn(in, 'I')
	case bytecode.Lreturn:
		s.popWide(vtLong)
		v.checkReturn(in, 'J')
	case bytecode.Freturn:
		s.popKind(vtFloat)
		v.checkReturn(in, 'F')
	case bytecode.Dreturn:
		s.popWide(vtDouble)
		v.checkReturn(in, 'D')
	case bytecode.Areturn:
		s.popRef()
		v.checkReturn(in, 'A')
	case bytecode.Return:
		v.checkReturn(in, 'V')

	case bytecode.Getstatic, bytecode.Putstatic, bytecode.Getfield, bytecode.Putfield:
		v.simField(s, in)
	case bytecode.Invokevirtual, bytecode.Invokespecial, bytecode.Invokestatic,
		bytecode.Invokeinterface:
		v.simInvoke(s, in)
	case bytecode.Invokedynamic:
		v.simInvokeDynamic(s, in)

	case bytecode.New:
		cname, ok := v.ex.f.Pool.ClassName(in.CPIndex)
		if vm.br(bVerifyNewCp, !ok) {
			v.fail(ErrClassFormat, "new references non-class constant #%d", in.CPIndex)
			break
		}
		s.push(vt{kind: vtUninit, cls: cname, pc: in.PC})
	case bytecode.Newarray:
		if vm.br(bVerifyNewarrayType, !in.ArrayTyp.Valid()) {
			v.fail(ErrVerify, "newarray with invalid type code %d", in.ArrayTyp)
			break
		}
		s.popKind(vtInt)
		s.push(refOf("[" + in.ArrayTyp.Descriptor()))
	case bytecode.Anewarray:
		cname, ok := v.ex.f.Pool.ClassName(in.CPIndex)
		if vm.br(bVerifyAnewarrayCp, !ok) {
			v.fail(ErrClassFormat, "anewarray references non-class constant #%d", in.CPIndex)
			break
		}
		s.popKind(vtInt)
		if len(cname) > 0 && cname[0] == '[' {
			s.push(refOf("[" + cname))
		} else {
			s.push(refOf("[L" + cname + ";"))
		}
	case bytecode.Multianewarray:
		if vm.br(bVerifyMultianewarrayDims, in.Count == 0) {
			v.fail(ErrVerify, "multianewarray with zero dimensions")
			break
		}
		for i := 0; i < int(in.Count); i++ {
			s.popKind(vtInt)
		}
		cname, _ := v.ex.f.Pool.ClassName(in.CPIndex)
		s.push(refOf(cname))
	case bytecode.Arraylength:
		s.popRef()
		s.push(vt{kind: vtInt})

	case bytecode.Athrow:
		t := s.popRef()
		if v.err == nil && t.kind == vtRef && t.cls != "" && t.cls != v.ex.name {
			if _, ok := vm.Env.Lookup(t.cls); ok && vm.br(bVerifyAthrowThrowable, !vm.Env.IsThrowable(t.cls)) {
				v.fail(ErrVerify, "athrow of non-Throwable %s", t.cls)
			}
		}
	case bytecode.Checkcast:
		t := s.popRef()
		cname, ok := v.ex.f.Pool.ClassName(in.CPIndex)
		if vm.br(bVerifyCheckcastCp, !ok) {
			v.fail(ErrClassFormat, "checkcast references non-class constant #%d", in.CPIndex)
			break
		}
		_ = t
		s.push(refOf(cname))
	case bytecode.Instanceof:
		s.popRef()
		if _, ok := v.ex.f.Pool.ClassName(in.CPIndex); vm.br(bVerifyInstanceofCp, !ok) {
			v.fail(ErrClassFormat, "instanceof references non-class constant #%d", in.CPIndex)
			break
		}
		s.push(vt{kind: vtInt})
	case bytecode.Monitorenter, bytecode.Monitorexit:
		s.popRef()

	default:
		vm.st(pVerifyOpUnknown)
		v.fail(ErrVerify, "unsupported opcode %s", op.Mnemonic())
	}

	if v.err != nil {
		return
	}

	// Propagate to successors.
	if !in.Op.EndsBlock() {
		next := idx + 1
		if vm.br(bVerifyFalloff, next >= len(v.ins)) {
			v.fail(ErrVerify, "execution falls off the end of the code")
			return
		}
		v.mergeInto(next, fr)
	}
	for _, t := range v.targets[idx] {
		v.mergeInto(v.pcIndex[t], fr)
	}
	// Exception edges: any instruction inside a protected range can
	// transfer to the handler with a single throwable on the stack.
	for _, h := range v.code.Handlers {
		if in.PC >= int(h.StartPC) && in.PC < int(h.EndPC) {
			hidx, ok := v.pcIndex[int(h.HandlerPC)]
			if !ok {
				continue // already rejected above
			}
			cname := "java/lang/Throwable"
			if h.CatchType != 0 {
				if n, ok := v.ex.f.Pool.ClassName(h.CatchType); ok {
					cname = n
				}
			}
			hf := vm.vscratch.getFrame()
			hf.locals = append(hf.locals[:0], fr.locals...)
			hf.stack = append(hf.stack[:0], refOf(cname))
			v.mergeInto(hidx, hf)
			vm.vscratch.putFrame(hf)
		}
	}
}

// elementOf computes the element type of an array reference when known.
func elementOf(arr vt) vt {
	if arr.kind == vtRef && len(arr.cls) > 1 && arr.cls[0] == '[' {
		elem := arr.cls[1:]
		if elem[0] == 'L' && elem[len(elem)-1] == ';' {
			return refOf(elem[1 : len(elem)-1])
		}
		if elem[0] == '[' {
			return refOf(elem)
		}
	}
	return refOf("")
}

func (v *verifier) checkReturn(in *bytecode.Instruction, kind byte) {
	ret := v.md.Return
	var ok bool
	switch kind {
	case 'V':
		ok = ret.IsVoid()
	case 'A':
		ok = ret.IsReference()
	case 'I':
		ok = ret.Dims == 0 && (ret.Kind == 'I' || ret.Kind == 'Z' || ret.Kind == 'B' || ret.Kind == 'C' || ret.Kind == 'S')
	default:
		ok = ret.Dims == 0 && ret.Kind == kind
	}
	if v.vm.br(bVerifyReturnmatch, !ok) {
		v.fail(ErrVerify, "%s at pc %d does not match return type %s", in.Op.Mnemonic(), in.PC, ret.Java())
	}
	// A constructor must have initialized `this` before returning.
	if kind == 'V' && v.m.Name(v.ex.f.Pool) == "<init>" {
		fr := v.in[v.pcIndex[in.PC]]
		if len(fr.locals) > 0 && fr.locals[0].kind == vtUninit && fr.locals[0].pc == -1 {
			if v.vm.br(bVerifyInitUninitreturn, true) {
				v.fail(ErrVerify, "constructor returns without calling super constructor")
			}
		}
	}
}

func (v *verifier) simLdc(s *simFrame, in *bytecode.Instruction, wide bool) {
	c := v.ex.f.Pool.Get(in.CPIndex)
	if v.vm.br(bVerifyLdcCp, c == nil) {
		v.fail(ErrClassFormat, "ldc references unusable constant #%d", in.CPIndex)
		return
	}
	switch c.Tag {
	case classfile.TagInteger:
		v.vm.st(pVerifyLdcInt)
		if wide {
			v.fail(ErrVerify, "ldc2_w of a single-slot constant")
			return
		}
		s.push(vt{kind: vtInt})
	case classfile.TagFloat:
		v.vm.st(pVerifyLdcFloat)
		if wide {
			v.fail(ErrVerify, "ldc2_w of a single-slot constant")
			return
		}
		s.push(vt{kind: vtFloat})
	case classfile.TagString:
		v.vm.st(pVerifyLdcString)
		if wide {
			v.fail(ErrVerify, "ldc2_w of a single-slot constant")
			return
		}
		s.push(refOf("java/lang/String"))
	case classfile.TagClass:
		v.vm.st(pVerifyLdcClass)
		if wide {
			v.fail(ErrVerify, "ldc2_w of a single-slot constant")
			return
		}
		s.push(refOf("java/lang/Class"))
	case classfile.TagLong:
		v.vm.st(pVerifyLdcLong)
		if !wide {
			v.fail(ErrVerify, "ldc of a two-slot constant")
			return
		}
		s.pushWide(vt{kind: vtLong})
	case classfile.TagDouble:
		v.vm.st(pVerifyLdcDouble)
		if !wide {
			v.fail(ErrVerify, "ldc of a two-slot constant")
			return
		}
		s.pushWide(vt{kind: vtDouble})
	default:
		v.vm.st(pVerifyLdcBadtag)
		v.fail(ErrClassFormat, "ldc of unsupported constant tag %s", c.Tag)
	}
}

func (v *verifier) simField(s *simFrame, in *bytecode.Instruction) {
	cls, name, desc, ok := v.ex.f.Pool.MemberRef(in.CPIndex)
	if v.vm.br(bVerifyFieldCp, !ok) {
		v.fail(ErrClassFormat, "field instruction references invalid constant #%d", in.CPIndex)
		return
	}
	ft, err := descriptor.ParseField(desc)
	if v.vm.br(bVerifyFieldDesc, err != nil) {
		v.fail(ErrClassFormat, "field %s.%s has malformed descriptor %q", cls, name, desc)
		return
	}
	t := typeOfDesc(ft)
	switch in.Op {
	case bytecode.Getstatic:
		if t.isWideFirst() {
			s.pushWide(t)
		} else {
			s.push(t)
		}
	case bytecode.Putstatic:
		s.popDesc(ft, fmt.Sprintf("putstatic %s.%s", cls, name))
	case bytecode.Getfield:
		s.popRef()
		if t.isWideFirst() {
			s.pushWide(t)
		} else {
			s.push(t)
		}
	case bytecode.Putfield:
		s.popDesc(ft, fmt.Sprintf("putfield %s.%s", cls, name))
		s.popRef()
	}
}

func (v *verifier) simInvoke(s *simFrame, in *bytecode.Instruction) {
	cls, name, desc, ok := v.ex.f.Pool.MemberRef(in.CPIndex)
	if v.vm.br(bVerifyInvokeCp, !ok) {
		v.fail(ErrClassFormat, "invoke references invalid constant #%d", in.CPIndex)
		return
	}
	md, err := descriptor.ParseMethod(desc)
	if v.vm.br(bVerifyInvokeDesc, err != nil) {
		v.fail(ErrClassFormat, "invoked method %s.%s has malformed descriptor %q", cls, name, desc)
		return
	}
	// Args are popped right-to-left.
	for i := len(md.Params) - 1; i >= 0; i-- {
		s.popDesc(md.Params[i], fmt.Sprintf("argument %d of %s.%s", i, cls, name))
	}
	if in.Op != bytecode.Invokestatic {
		recv := s.popRef()
		if v.err != nil {
			return
		}
		if in.Op == bytecode.Invokespecial && name == "<init>" {
			// Initializes an uninitialized object: rewrite every copy.
			if recv.kind == vtUninit {
				v.vm.st(pVerifyInvokeInitobj)
				initTo := refOf(recv.cls)
				if recv.pc == -1 {
					initTo = refOf(v.ex.name)
				}
				replace := func(slice []vt) {
					for i, t := range slice {
						if t.kind == vtUninit && t.pc == recv.pc {
							slice[i] = initTo
						}
					}
				}
				replace(s.f.stack)
				replace(s.f.locals)
			} else if v.vm.br(bVerifyInvokeInitoninit, recv.kind == vtRef && v.vm.Spec.Policy.VerifyUninitMerge) {
				// Strict dialects reject re-initialization of an already
				// initialized reference.
				v.fail(ErrVerify, "invokespecial <init> on initialized reference")
				return
			}
		} else if recv.kind == vtUninit {
			if v.vm.br(bVerifyInvokeUninitrecv, true) {
				v.fail(ErrVerify, "method call on uninitialized object")
				return
			}
		}
	}
	if !md.Return.IsVoid() {
		t := typeOfDesc(md.Return)
		if t.isWideFirst() {
			s.pushWide(t)
		} else {
			s.push(t)
		}
	}
}

func (v *verifier) simInvokeDynamic(s *simFrame, in *bytecode.Instruction) {
	c := v.ex.f.Pool.Get(in.CPIndex)
	if v.vm.br(bVerifyIndyCp, c == nil || c.Tag != classfile.TagInvokeDynamic) {
		v.fail(ErrClassFormat, "invokedynamic references invalid constant #%d", in.CPIndex)
		return
	}
	_, desc, ok := v.ex.f.Pool.NameAndType(c.Ref2)
	if v.vm.br(bVerifyIndyNat, !ok) {
		v.fail(ErrClassFormat, "invokedynamic NameAndType is invalid")
		return
	}
	md, err := descriptor.ParseMethod(desc)
	if v.vm.br(bVerifyIndyDesc, err != nil) {
		v.fail(ErrClassFormat, "invokedynamic descriptor %q is malformed", desc)
		return
	}
	for i := len(md.Params) - 1; i >= 0; i-- {
		s.popDesc(md.Params[i], "invokedynamic argument")
	}
	if !md.Return.IsVoid() {
		t := typeOfDesc(md.Return)
		if t.isWideFirst() {
			s.pushWide(t)
		} else {
			s.push(t)
		}
	}
}
