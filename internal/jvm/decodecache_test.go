package jvm

import (
	"testing"

	"repro/internal/telemetry"
)

// TestDecodeCacheRotation pins the generational discipline: filling the
// live generation rotates it into prev (one eviction tick) instead of
// dropping everything, and entries of the previous generation are still
// served.
func TestDecodeCacheRotation(t *testing.T) {
	c := NewDecodeCache()
	codes := make([][]byte, decodeCacheMax+1)
	for i := range codes {
		codes[i] = []byte{0x10, byte(i), byte(i >> 8)}
		c.put(codes[i], &decodedCode{})
	}
	if got := c.Evictions(); got != 1 {
		t.Fatalf("evictions = %d after one overflow, want 1", got)
	}
	// The overflowing entry lives in the fresh generation; the rest sit
	// in prev and must still hit.
	for _, code := range codes {
		if _, ok := c.get(code); !ok {
			t.Fatalf("entry %v lost after rotation", code)
		}
	}
}

// TestDecodeCacheSecondChance pins promotion: an old-generation entry
// that gets used is promoted into the live generation and survives the
// next rotation, while untouched old entries age out after two.
func TestDecodeCacheSecondChance(t *testing.T) {
	c := NewDecodeCache()
	hot := []byte{0xb1}
	c.put(hot, &decodedCode{})

	fill := func(gen byte) {
		for i := 0; i < decodeCacheMax; i++ {
			c.put([]byte{gen, byte(i), byte(i >> 8)}, &decodedCode{})
		}
	}
	fill(1) // rotates: hot moves to prev
	if _, ok := c.get(hot); !ok {
		t.Fatal("hot entry missing from previous generation")
	}
	fill(2) // rotates again: hot was promoted, so it survives
	if _, ok := c.get(hot); !ok {
		t.Fatal("promoted entry did not survive the second rotation")
	}
	// An entry that was never re-used after its generation rotated away
	// is gone after two more rotations.
	cold := []byte{0x03}
	c.put(cold, &decodedCode{})
	fill(3)
	fill(4)
	if _, ok := c.get(cold); ok {
		t.Fatal("cold entry survived two rotations without use")
	}
}

// TestDecodeCacheEvictionTelemetry pins the counter surface: rotations
// on a VM's decode path tick jvm.<spec>.decode_cache.evictions.
func TestDecodeCacheEvictionTelemetry(t *testing.T) {
	vm := New(HotSpot9())
	reg := telemetry.New()
	vm.SetTelemetry(reg)
	for i := 0; i <= decodeCacheMax; i++ {
		vm.decodeCode([]byte{0x10, byte(i), byte(i >> 8)})
	}
	name := "jvm." + vm.Spec.Name + ".decode_cache.evictions"
	if got := reg.Snapshot().Counter(name); got != 1 {
		t.Fatalf("%s = %d, want 1", name, got)
	}
	if got := vm.decodeCache.Evictions(); got != 1 {
		t.Fatalf("cache evictions = %d, want 1", got)
	}
}
