package jvm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/classfile"
)

// TestPropertyRandomCodeNeverPanics feeds methods whose code arrays are
// uniform random bytes through every VM: the verifier (eager VMs) or
// the interpreter's dynamic checks (lazy VMs) must reject or survive
// them, never panic and never loop forever.
func TestPropertyRandomCodeNeverPanics(t *testing.T) {
	vms := make([]*VM, 0, 5)
	for _, spec := range StandardFive() {
		vms = append(vms, New(spec))
	}
	prop := func(seed int64) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic for seed %d: %v", seed, r)
				ok = false
			}
		}()
		rng := rand.New(rand.NewSource(seed))
		f := classfile.New("FRand")
		classfile.AttachDefaultInit(f)
		m := f.AddMethod(classfile.AccPublic|classfile.AccStatic, "main", "([Ljava/lang/String;)V")
		code := make([]byte, 1+rng.Intn(60))
		for i := range code {
			code[i] = byte(rng.Intn(256))
		}
		m.Attributes = append(m.Attributes, &classfile.CodeAttr{
			MaxStack:  uint16(rng.Intn(8)),
			MaxLocals: uint16(rng.Intn(8)),
			Code:      code,
		})
		data, err := f.Bytes()
		if err != nil {
			return true
		}
		for _, vm := range vms {
			vm.Run(data)
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPropertyRandomPoolSurgeryNeverPanics rewires random constant-pool
// entries of a valid class to random targets and runs the result
// everywhere — modelling the cp damage byte-level fuzzers cause.
func TestPropertyRandomPoolSurgeryNeverPanics(t *testing.T) {
	vms := make([]*VM, 0, 5)
	for _, spec := range StandardFive() {
		vms = append(vms, New(spec))
	}
	prop := func(seed int64) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic for seed %d: %v", seed, r)
				ok = false
			}
		}()
		rng := rand.New(rand.NewSource(seed))
		f := helloClass("FPool")
		// Rewire a few Ref1/Ref2 fields of live constants.
		n := 1 + rng.Intn(4)
		for i := 0; i < n; i++ {
			idx := uint16(1 + rng.Intn(f.Pool.Count()-1))
			c := f.Pool.Get(idx)
			if c == nil {
				continue
			}
			switch rng.Intn(3) {
			case 0:
				c.Ref1 = uint16(rng.Intn(f.Pool.Count() + 8))
			case 1:
				c.Ref2 = uint16(rng.Intn(f.Pool.Count() + 8))
			default:
				c.Tag = classfile.ConstTag(rng.Intn(20))
			}
		}
		data, err := f.Bytes()
		if err != nil {
			return true
		}
		for _, vm := range vms {
			vm.Run(data)
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPropertyRandomFlagSoupNeverPanics randomizes every access-flag
// word in the class.
func TestPropertyRandomFlagSoupNeverPanics(t *testing.T) {
	vms := make([]*VM, 0, 5)
	for _, spec := range StandardFive() {
		vms = append(vms, New(spec))
	}
	prop := func(seed int64) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
			}
		}()
		rng := rand.New(rand.NewSource(seed))
		f := helloClass("FFlags")
		f.AccessFlags = classfile.Flags(rng.Intn(0x10000))
		for _, m := range f.Methods {
			m.AccessFlags = classfile.Flags(rng.Intn(0x10000))
		}
		data, err := f.Bytes()
		if err != nil {
			return true
		}
		for _, vm := range vms {
			o := vm.Run(data)
			if o.Phase < PhaseInvoked || o.Phase > PhaseRuntime {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
