package jvm

import (
	"testing"

	"repro/internal/bytecode"
	"repro/internal/classfile"
	"repro/internal/coverage"
)

// helloClass builds the canonical valid test class: public class with
// default <init> and the standard println main.
func helloClass(name string) *classfile.File {
	f := classfile.New(name)
	classfile.AttachDefaultInit(f)
	classfile.AttachStandardMain(f, "Completed!")
	return f
}

func allVMs() []*VM {
	var vms []*VM
	for _, spec := range StandardFive() {
		vms = append(vms, New(spec))
	}
	return vms
}

func runAll(t *testing.T, f *classfile.File) map[string]Outcome {
	t.Helper()
	data, err := f.Bytes()
	if err != nil {
		t.Fatalf("serialise: %v", err)
	}
	out := map[string]Outcome{}
	for _, vm := range allVMs() {
		out[vm.Name()] = vm.Run(data)
	}
	return out
}

func TestValidClassInvokedOnAllVMs(t *testing.T) {
	f := helloClass("M1")
	for name, o := range runAll(t, f) {
		if !o.OK() {
			t.Errorf("%s: %s", name, o)
		}
		if len(o.Output) != 1 || o.Output[0] != "Completed!" {
			t.Errorf("%s: output = %v", name, o.Output)
		}
	}
}

func TestStandardFiveOrder(t *testing.T) {
	specs := StandardFive()
	want := []string{"HotSpot-Java7", "HotSpot-Java8", "HotSpot-Java9", "J9-SDK8", "GIJ-5.1.0"}
	if len(specs) != 5 {
		t.Fatalf("got %d specs", len(specs))
	}
	for i, s := range specs {
		if s.Name != want[i] {
			t.Errorf("spec %d = %s, want %s", i, s.Name, want[i])
		}
	}
}

func TestGarbageBytesRejectedAtLoading(t *testing.T) {
	for _, vm := range allVMs() {
		o := vm.Run([]byte{0xCA, 0xFE, 0xBA, 0xBE, 0x00})
		if o.Phase != PhaseLoading || o.Error != ErrClassFormat {
			t.Errorf("%s: %s", vm.Name(), o)
		}
	}
}

// --- Problem 1: public abstract <clinit> ------------------------------

func TestProblem1AbstractClinitDiscrepancy(t *testing.T) {
	// Figure 2's class: <clinit> is public abstract, non-static, no code.
	f := helloClass("M1436188543")
	f.AddMethod(classfile.AccPublic|classfile.AccAbstract, "<clinit>", "()V")
	out := runAll(t, f)

	// HotSpot treats it as an ordinary method -> but an ordinary abstract
	// method on a non-abstract class is still fine at startup; the class
	// runs normally.
	for _, hs := range []string{"HotSpot-Java7", "HotSpot-Java8", "HotSpot-Java9"} {
		if !out[hs].OK() {
			t.Errorf("%s should invoke normally, got %s", hs, out[hs])
		}
	}
	// J9 treats any <clinit> as the initializer and demands Code.
	j9 := out["J9-SDK8"]
	if j9.Phase != PhaseLoading || j9.Error != ErrClassFormat {
		t.Errorf("J9 should throw ClassFormatError at loading, got %s", j9)
	}
	// GIJ ignores the oddity.
	if !out["GIJ-5.1.0"].OK() {
		t.Errorf("GIJ should invoke normally, got %s", out["GIJ-5.1.0"])
	}
}

func TestStaticClinitRunsOnAll(t *testing.T) {
	f := helloClass("MC")
	clinit := f.AddMethod(classfile.AccStatic, "<clinit>", "()V")
	cb := classfile.NewCodeBuilder(f.Pool)
	cb.Getstatic("java/lang/System", "out", "Ljava/io/PrintStream;").
		Ldc("from clinit").
		Invokevirtual("java/io/PrintStream", "println", "(Ljava/lang/String;)V").
		Op(bytecode.Return)
	cb.SetMaxStack(2).SetMaxLocals(0)
	clinit.Attributes = append(clinit.Attributes, cb.Build())
	for name, o := range runAll(t, f) {
		if !o.OK() {
			t.Errorf("%s: %s", name, o)
			continue
		}
		if len(o.Output) != 2 || o.Output[0] != "from clinit" {
			t.Errorf("%s: output %v", name, o.Output)
		}
	}
}

func TestClinitThrowingWrappedInInitializerError(t *testing.T) {
	f := helloClass("MT")
	clinit := f.AddMethod(classfile.AccStatic, "<clinit>", "()V")
	cb := classfile.NewCodeBuilder(f.Pool)
	// new ArithmeticException; dup; invokespecial <init>; athrow
	cb.New("java/lang/ArithmeticException").
		Op(bytecode.Dup).
		Invokespecial("java/lang/ArithmeticException", "<init>", "()V").
		Op(bytecode.Athrow)
	cb.SetMaxStack(2).SetMaxLocals(0)
	clinit.Attributes = append(clinit.Attributes, cb.Build())
	for name, o := range runAll(t, f) {
		if o.Phase != PhaseInit || o.Error != ErrExceptionInInitializer {
			t.Errorf("%s: want ExceptionInInitializerError at init, got %s", name, o)
		}
	}
}

// --- Problem 2: verification dialect differences ----------------------

func TestProblem2LazyVerificationDiscrepancy(t *testing.T) {
	// A broken method that is never invoked: HotSpot's eager verifier
	// rejects the class at linking; J9 and GIJ never verify it and run
	// the class normally.
	f := helloClass("M2")
	m := f.AddMethod(classfile.AccPublic|classfile.AccStatic, "broken", "()I")
	cb := classfile.NewCodeBuilder(f.Pool)
	cb.Op(bytecode.Return) // void return in an int-returning method
	cb.SetMaxStack(1).SetMaxLocals(0)
	m.Attributes = append(m.Attributes, cb.Build())

	out := runAll(t, f)
	for _, hs := range []string{"HotSpot-Java7", "HotSpot-Java8", "HotSpot-Java9"} {
		if out[hs].Phase != PhaseLinking || out[hs].Error != ErrVerify {
			t.Errorf("%s: want VerifyError at linking, got %s", hs, out[hs])
		}
	}
	if !out["J9-SDK8"].OK() {
		t.Errorf("J9 (lazy verification) should run normally, got %s", out["J9-SDK8"])
	}
	if !out["GIJ-5.1.0"].OK() {
		t.Errorf("GIJ (lazy) should run normally, got %s", out["GIJ-5.1.0"])
	}
}

func TestProblem2ParamAssignabilityDiscrepancy(t *testing.T) {
	// The internalTransform case: a parameter declared as String is used
	// where a Map is required. GIJ's strict dialect reports a
	// VerifyError; HotSpot and J9 accept it. The broken method must be
	// invoked for GIJ's lazy verifier to see it, so main calls it.
	f := classfile.New("M1433982529")
	classfile.AttachDefaultInit(f)

	m := f.AddMethod(classfile.AccProtected|classfile.AccStatic, "internalTransform", "(Ljava/lang/String;)V")
	cb := classfile.NewCodeBuilder(f.Pool)
	cb.Op(bytecode.Aload0). // the String parameter
				Invokestatic("java/lang/Object", "getBoolean", "(Ljava/util/Map;)Z").
				Op(bytecode.Pop).
				Op(bytecode.Return)
	cb.SetMaxStack(1).SetMaxLocals(1)
	m.Attributes = append(m.Attributes, cb.Build())

	mainM := f.AddMethod(classfile.AccPublic|classfile.AccStatic, "main", "([Ljava/lang/String;)V")
	mb := classfile.NewCodeBuilder(f.Pool)
	mb.Ldc("x").
		Invokestatic("M1433982529", "internalTransform", "(Ljava/lang/String;)V").
		Op(bytecode.Return)
	mb.SetMaxStack(1).SetMaxLocals(1)
	mainM.Attributes = append(mainM.Attributes, mb.Build())

	out := runAll(t, f)
	for _, lenient := range []string{"HotSpot-Java7", "HotSpot-Java8", "HotSpot-Java9", "J9-SDK8"} {
		if !out[lenient].OK() {
			t.Errorf("%s should miss the incompatible cast, got %s", lenient, out[lenient])
		}
	}
	gij := out["GIJ-5.1.0"]
	if gij.OK() || gij.Error != ErrVerify {
		t.Errorf("GIJ should report a VerifyError, got %s", gij)
	}
}

// --- Problem 3: throws-clause accessibility ----------------------------

func TestProblem3ThrowsAccessibilityDiscrepancy(t *testing.T) {
	// main declares `throws sun.java2d.pisces.PiscesRenderingEngine$2`.
	f := classfile.New("M1437121261")
	classfile.AttachDefaultInit(f)
	classfile.AttachStandardMain(f, "ok")
	main := f.FindMethod("main")
	main.Attributes = append(main.Attributes, &classfile.ExceptionsAttr{
		Classes: []uint16{f.Pool.AddClass("sun/java2d/pisces/PiscesRenderingEngine$2")},
	})

	out := runAll(t, f)
	// HotSpot checks throws clauses at link: IllegalAccessError.
	for _, hs := range []string{"HotSpot-Java7", "HotSpot-Java8", "HotSpot-Java9"} {
		if out[hs].Error != ErrIllegalAccess {
			t.Errorf("%s: want IllegalAccessError, got %s", hs, out[hs])
		}
	}
	// J9 and GIJ do not check throws clauses.
	if !out["J9-SDK8"].OK() {
		t.Errorf("J9 should run normally, got %s", out["J9-SDK8"])
	}
	if !out["GIJ-5.1.0"].OK() {
		t.Errorf("GIJ should run normally, got %s", out["GIJ-5.1.0"])
	}
}

// --- Problem 4: GIJ's leniency ------------------------------------------

func TestProblem4InterfaceExtendingClass(t *testing.T) {
	f := classfile.New("I1")
	f.AccessFlags = classfile.AccPublic | classfile.AccInterface | classfile.AccAbstract
	f.SetSuper("java/lang/Exception")
	out := runAll(t, f)
	for _, strict := range []string{"HotSpot-Java7", "HotSpot-Java8", "HotSpot-Java9", "J9-SDK8"} {
		if out[strict].Error != ErrClassFormat {
			t.Errorf("%s: want ClassFormatError, got %s", strict, out[strict])
		}
	}
	// GIJ fails to catch the illegal inheritance; without a main method
	// the run ends at the invocation phase, not with a format error.
	gij := out["GIJ-5.1.0"]
	if gij.Error == ErrClassFormat {
		t.Errorf("GIJ should not report ClassFormatError, got %s", gij)
	}
}

func TestProblem4InterfaceWithMain(t *testing.T) {
	f := classfile.New("IMain")
	f.AccessFlags = classfile.AccPublic | classfile.AccInterface | classfile.AccAbstract
	classfile.AttachStandardMain(f, "interface main!")
	out := runAll(t, f)
	// Strict VMs reject the static non-abstract interface method at load.
	for _, strict := range []string{"HotSpot-Java7", "HotSpot-Java8", "HotSpot-Java9", "J9-SDK8"} {
		if out[strict].Phase != PhaseLoading || out[strict].Error != ErrClassFormat {
			t.Errorf("%s: want ClassFormatError at loading, got %s", strict, out[strict])
		}
	}
	gij := out["GIJ-5.1.0"]
	if !gij.OK() || len(gij.Output) != 1 || gij.Output[0] != "interface main!" {
		t.Errorf("GIJ should execute the interface main, got %s", gij)
	}
}

func TestProblem4AbstractInit(t *testing.T) {
	// public abstract void <init>(int,int,int,boolean) — rejected by all
	// but GIJ.
	f := helloClass("MInit")
	f.AddMethod(classfile.AccPublic|classfile.AccAbstract, "<init>", "(IIIZ)V")
	out := runAll(t, f)
	for _, strict := range []string{"HotSpot-Java7", "HotSpot-Java8", "HotSpot-Java9", "J9-SDK8"} {
		if out[strict].Error != ErrClassFormat {
			t.Errorf("%s: want ClassFormatError, got %s", strict, out[strict])
		}
	}
	if !out["GIJ-5.1.0"].OK() {
		t.Errorf("GIJ should accept the abstract <init>, got %s", out["GIJ-5.1.0"])
	}
}

func TestProblem4InitReturningValue(t *testing.T) {
	// public Thread <init>() — allowed by GIJ, forbidden by the others.
	f := helloClass("MInitRet")
	m := f.AddMethod(classfile.AccPublic, "<init>", "()Ljava/lang/Thread;")
	cb := classfile.NewCodeBuilder(f.Pool)
	cb.Op(bytecode.AconstNull).Op(bytecode.Areturn)
	cb.SetMaxStack(1).SetMaxLocals(1)
	m.Attributes = append(m.Attributes, cb.Build())
	out := runAll(t, f)
	for _, strict := range []string{"HotSpot-Java7", "HotSpot-Java8", "HotSpot-Java9", "J9-SDK8"} {
		if out[strict].Error != ErrClassFormat {
			t.Errorf("%s: want ClassFormatError, got %s", strict, out[strict])
		}
	}
	if !out["GIJ-5.1.0"].OK() {
		t.Errorf("GIJ should accept <init> returning Thread, got %s", out["GIJ-5.1.0"])
	}
}

func TestProblem4DuplicateFields(t *testing.T) {
	f := helloClass("MDup")
	f.AddField(classfile.AccPublic, "x", "I")
	f.AddField(classfile.AccPublic, "x", "I")
	out := runAll(t, f)
	for _, strict := range []string{"HotSpot-Java7", "HotSpot-Java8", "HotSpot-Java9", "J9-SDK8"} {
		if out[strict].Phase != PhaseLoading || out[strict].Error != ErrClassFormat {
			t.Errorf("%s: want ClassFormatError at loading, got %s", strict, out[strict])
		}
	}
	if !out["GIJ-5.1.0"].OK() {
		t.Errorf("GIJ should accept duplicate fields, got %s", out["GIJ-5.1.0"])
	}
}

// --- environment-skew (compatibility) discrepancies ----------------------

func TestFinalSuperclassSkewAcrossReleases(t *testing.T) {
	// Subclassing com.sun.beans.editors.EnumEditor: fine on JRE7
	// (non-final), VerifyError on HotSpot 8 (final), inaccessible or
	// missing later.
	f := helloClass("MEnumEd")
	f.SetSuper("com/sun/beans/editors/EnumEditor")
	// <init> calls the matching super constructor; rebuild it.
	f.Methods = f.Methods[1:] // drop the Object-based <init>
	out := runAll(t, f)
	if !out["HotSpot-Java7"].OK() {
		t.Errorf("HotSpot7 should run (EnumEditor non-final in JRE7), got %s", out["HotSpot-Java7"])
	}
	hs8 := out["HotSpot-Java8"]
	if hs8.Phase != PhaseLinking || hs8.Error != ErrVerify {
		t.Errorf("HotSpot8 should throw VerifyError (final superclass), got %s", hs8)
	}
	gij := out["GIJ-5.1.0"]
	if gij.Error != ErrNoClassDef {
		t.Errorf("GIJ (Classpath) lacks EnumEditor: want NoClassDefFoundError, got %s", gij)
	}
}

func TestMissingClassSkew(t *testing.T) {
	f := helloClass("MLegacy")
	f.SetSuper("com/sun/legacy/Jre7Only")
	f.Methods = f.Methods[1:]
	out := runAll(t, f)
	if !out["HotSpot-Java7"].OK() {
		t.Errorf("HotSpot7 should run, got %s", out["HotSpot-Java7"])
	}
	for _, newer := range []string{"HotSpot-Java8", "HotSpot-Java9", "J9-SDK8"} {
		if out[newer].Phase != PhaseLoading || out[newer].Error != ErrNoClassDef {
			t.Errorf("%s: want NoClassDefFoundError at loading, got %s", newer, out[newer])
		}
	}
}

// --- structural rejections -------------------------------------------------

func TestSelfSuperclassCircularity(t *testing.T) {
	f := helloClass("MSelf")
	f.SetSuper("MSelf")
	for name, o := range runAll(t, f) {
		if o.Error != ErrClassCircularity {
			t.Errorf("%s: want ClassCircularityError, got %s", name, o)
		}
	}
}

func TestExtendingFinalPlatformClass(t *testing.T) {
	f := helloClass("MStr")
	f.SetSuper("java/lang/String")
	f.Methods = f.Methods[1:]
	out := runAll(t, f)
	for _, strict := range []string{"HotSpot-Java7", "HotSpot-Java8", "HotSpot-Java9", "J9-SDK8"} {
		if out[strict].Phase != PhaseLinking || out[strict].Error != ErrVerify {
			t.Errorf("%s: want VerifyError at linking, got %s", strict, out[strict])
		}
	}
	if !out["GIJ-5.1.0"].OK() {
		t.Errorf("GIJ skips the final-superclass check, got %s", out["GIJ-5.1.0"])
	}
}

func TestExtendingInterface(t *testing.T) {
	f := helloClass("MIface")
	f.SetSuper("java/util/Map")
	f.Methods = f.Methods[1:]
	out := runAll(t, f)
	for _, name := range []string{"HotSpot-Java7", "J9-SDK8", "GIJ-5.1.0"} {
		if out[name].Phase != PhaseLinking || out[name].Error != ErrIncompatibleChange {
			t.Errorf("%s: want IncompatibleClassChangeError, got %s", name, out[name])
		}
	}
}

func TestImplementingAClass(t *testing.T) {
	f := helloClass("MImplClass")
	f.AddInterface("java/lang/Thread")
	out := runAll(t, f)
	for _, name := range []string{"HotSpot-Java8", "J9-SDK8"} {
		if out[name].Error != ErrIncompatibleChange {
			t.Errorf("%s: want IncompatibleClassChangeError, got %s", name, out[name])
		}
	}
}

func TestUnknownSuperclass(t *testing.T) {
	f := helloClass("MNoSuper")
	f.SetSuper("does/not/Exist")
	f.Methods = f.Methods[1:]
	for name, o := range runAll(t, f) {
		if o.Phase != PhaseLoading || o.Error != ErrNoClassDef {
			t.Errorf("%s: want NoClassDefFoundError at loading, got %s", name, o)
		}
	}
}

func TestRenamedMethodBreaksResolution(t *testing.T) {
	// main invokes helper; renaming the declaration leaves the call site
	// dangling. Eager VMs: NoSuchMethodError at link. GIJ: at runtime.
	f := classfile.New("MRen")
	classfile.AttachDefaultInit(f)
	helper := f.AddMethod(classfile.AccPublic|classfile.AccStatic, "helper", "()V")
	cb := classfile.NewCodeBuilder(f.Pool)
	cb.Op(bytecode.Return)
	cb.SetMaxStack(0).SetMaxLocals(0)
	helper.Attributes = append(helper.Attributes, cb.Build())
	mainM := f.AddMethod(classfile.AccPublic|classfile.AccStatic, "main", "([Ljava/lang/String;)V")
	mb := classfile.NewCodeBuilder(f.Pool)
	mb.Invokestatic("MRen", "helper", "()V").Op(bytecode.Return)
	mb.SetMaxStack(0).SetMaxLocals(1)
	mainM.Attributes = append(mainM.Attributes, mb.Build())

	// Rename the declaration only (what the Soot-style mutator does).
	helper.NameIndex = f.Pool.AddUtf8("renamed")

	out := runAll(t, f)
	for _, eager := range []string{"HotSpot-Java7", "HotSpot-Java8", "HotSpot-Java9", "J9-SDK8"} {
		if out[eager].Phase != PhaseLinking || out[eager].Error != ErrNoSuchMethod {
			t.Errorf("%s: want NoSuchMethodError at linking, got %s", eager, out[eager])
		}
	}
	gij := out["GIJ-5.1.0"]
	if gij.Phase != PhaseRuntime || gij.Error != ErrNoSuchMethod {
		t.Errorf("GIJ: want NoSuchMethodError at runtime, got %s", gij)
	}
}

func TestMissingMainIsRuntimePhase(t *testing.T) {
	f := classfile.New("MNoMain")
	classfile.AttachDefaultInit(f)
	for name, o := range runAll(t, f) {
		if o.Phase != PhaseRuntime || o.Error != ErrMainNotFound {
			t.Errorf("%s: want main-not-found at runtime, got %s", name, o)
		}
	}
}

func TestNonStaticMainPolicySplit(t *testing.T) {
	f := classfile.New("MNsm")
	classfile.AttachDefaultInit(f)
	m := f.AddMethod(classfile.AccPublic, "main", "([Ljava/lang/String;)V")
	cb := classfile.NewCodeBuilder(f.Pool)
	cb.Getstatic("java/lang/System", "out", "Ljava/io/PrintStream;").
		Ldc("instance main").
		Invokevirtual("java/io/PrintStream", "println", "(Ljava/lang/String;)V").
		Op(bytecode.Return)
	cb.SetMaxStack(2).SetMaxLocals(2)
	m.Attributes = append(m.Attributes, cb.Build())
	out := runAll(t, f)
	for _, strict := range []string{"HotSpot-Java7", "J9-SDK8"} {
		if out[strict].Error != ErrMainNotFound {
			t.Errorf("%s: want main-not-found, got %s", strict, out[strict])
		}
	}
	if !out["GIJ-5.1.0"].OK() {
		t.Errorf("GIJ should run the instance main, got %s", out["GIJ-5.1.0"])
	}
}

func TestUnsupportedVersionGate(t *testing.T) {
	f := helloClass("MVer")
	f.Major = 60
	out := runAll(t, f)
	for _, strict := range []string{"HotSpot-Java7", "HotSpot-Java8", "HotSpot-Java9", "J9-SDK8"} {
		if out[strict].Phase != PhaseLoading || out[strict].Error != ErrUnsupportedVersion {
			t.Errorf("%s: want UnsupportedClassVersionError, got %s", strict, out[strict])
		}
	}
	// GIJ accepts newer versions (Problem 4 context).
	if !out["GIJ-5.1.0"].OK() {
		t.Errorf("GIJ should tolerate version 60, got %s", out["GIJ-5.1.0"])
	}
}

func TestRuntimeArithmeticException(t *testing.T) {
	f := classfile.New("MDiv")
	classfile.AttachDefaultInit(f)
	m := f.AddMethod(classfile.AccPublic|classfile.AccStatic, "main", "([Ljava/lang/String;)V")
	cb := classfile.NewCodeBuilder(f.Pool)
	cb.LdcInt(1).LdcInt(0).Op(bytecode.Idiv).Op(bytecode.Pop).Op(bytecode.Return)
	cb.SetMaxStack(2).SetMaxLocals(1)
	m.Attributes = append(m.Attributes, cb.Build())
	for name, o := range runAll(t, f) {
		if o.Phase != PhaseRuntime || o.Error != "java.lang.ArithmeticException" {
			t.Errorf("%s: want ArithmeticException at runtime, got %s", name, o)
		}
	}
}

func TestExceptionHandlerCatches(t *testing.T) {
	f := classfile.New("MCatch")
	classfile.AttachDefaultInit(f)
	m := f.AddMethod(classfile.AccPublic|classfile.AccStatic, "main", "([Ljava/lang/String;)V")
	cb := classfile.NewCodeBuilder(f.Pool)
	// try { 1/0 } catch (ArithmeticException e) { println("caught") }
	// The handler sits after the main-path return, so no goto is needed.
	cb.LdcInt(1).LdcInt(0).Op(bytecode.Idiv).Op(bytecode.Pop)
	end := cb.PC()
	cb.Op(bytecode.Return)
	handlerPC := cb.PC()
	cb.Op(bytecode.Pop). // discard the exception
				Getstatic("java/lang/System", "out", "Ljava/io/PrintStream;").
				Ldc("caught").
				Invokevirtual("java/io/PrintStream", "println", "(Ljava/lang/String;)V")
	cb.Op(bytecode.Return)
	cb.Handler(0, end, handlerPC, "java/lang/ArithmeticException")
	cb.SetMaxStack(2).SetMaxLocals(1)
	m.Attributes = append(m.Attributes, cb.Build())
	for name, o := range runAll(t, f) {
		if !o.OK() {
			t.Errorf("%s: %s", name, o)
			continue
		}
		if len(o.Output) != 1 || o.Output[0] != "caught" {
			t.Errorf("%s: output %v", name, o.Output)
		}
	}
}

func TestStepBudgetOnInfiniteLoop(t *testing.T) {
	f := classfile.New("MLoop")
	classfile.AttachDefaultInit(f)
	m := f.AddMethod(classfile.AccPublic|classfile.AccStatic, "main", "([Ljava/lang/String;)V")
	cb := classfile.NewCodeBuilder(f.Pool)
	cb.U2(bytecode.Goto, 0) // goto self
	cb.SetMaxStack(0).SetMaxLocals(1)
	m.Attributes = append(m.Attributes, cb.Build())
	vm := New(HotSpot8())
	data, _ := f.Bytes()
	o := vm.Run(data)
	if o.Phase != PhaseRuntime {
		t.Errorf("infinite loop should exhaust the budget at runtime, got %s", o)
	}
}

func TestJ9StrictStackShape(t *testing.T) {
	// Merge String and HashMap on the stack, then pass the merged value
	// to println(Object). J9's strict merge rejects it when invoked; the
	// others compute the common supertype (Object) and run.
	f := classfile.New("MShape")
	classfile.AttachDefaultInit(f)
	m := f.AddMethod(classfile.AccPublic|classfile.AccStatic, "main", "([Ljava/lang/String;)V")
	cb := classfile.NewCodeBuilder(f.Pool)
	// aload_0; arraylength; ifeq +L1: push "s"; goto L2; L1: new HashMap;dup;init; L2: pop; return
	cb.Op(bytecode.Aload0).Op(bytecode.Arraylength)
	cb.U2(bytecode.Ifeq, 8) // to the HashMap branch
	cb.Ldc("s")
	cb.U2(bytecode.Goto, 10) // over the HashMap branch to pop (pc 7 -> 17)
	cb.New("java/util/HashMap").
		Op(bytecode.Dup).
		Invokespecial("java/util/HashMap", "<init>", "()V")
	cb.Op(bytecode.Pop)
	cb.Op(bytecode.Return)
	cb.SetMaxStack(2).SetMaxLocals(1)
	m.Attributes = append(m.Attributes, cb.Build())

	out := runAll(t, f)
	if !out["HotSpot-Java8"].OK() {
		t.Errorf("HotSpot should merge to Object and run, got %s", out["HotSpot-Java8"])
	}
	j9 := out["J9-SDK8"]
	if j9.OK() || j9.Error != ErrVerify {
		t.Errorf("J9 should report stack shape inconsistency, got %s", j9)
	}
}

func TestHotSpot9InitAccessCheck(t *testing.T) {
	// A class constant naming an encapsulated sun.* type: HotSpot 9
	// rejects at initialization; HotSpot 7/8 run it.
	f := helloClass("MSun")
	f.Pool.AddClass("sun/java2d/pisces/PiscesRenderingEngine")
	out := runAll(t, f)
	if !out["HotSpot-Java7"].OK() || !out["HotSpot-Java8"].OK() {
		t.Errorf("HotSpot 7/8 should run, got %s / %s", out["HotSpot-Java7"], out["HotSpot-Java8"])
	}
	hs9 := out["HotSpot-Java9"]
	if hs9.Phase != PhaseInit || hs9.Error != ErrIllegalAccess {
		t.Errorf("HotSpot9 should reject at initialization, got %s", hs9)
	}
}

func TestCoverageRecorderProducesTraces(t *testing.T) {
	spec := HotSpot9()
	vm := New(spec)
	rec := coverage.NewRecorder(ProbeRegistry())
	vm.SetRecorder(rec)

	dataA, _ := helloClass("MA").Bytes()
	vm.Run(dataA)
	trA := rec.Trace()
	rec.Reset()

	bad := helloClass("MB")
	bad.SetSuper("does/not/Exist")
	bad.Methods = bad.Methods[1:]
	dataB, _ := bad.Bytes()
	vm.Run(dataB)
	trB := rec.Trace()

	if trA.Stats().Stmts == 0 || trB.Stats().Stmts == 0 {
		t.Fatal("recorder captured nothing")
	}
	if trA.EqualSets(trB) {
		t.Error("a passing and a failing class must produce different traces")
	}
	if trA.Stats() == trB.Stats() {
		t.Error("stats should differ between pass and early loading failure")
	}
}

func TestDeterministicOutcomes(t *testing.T) {
	// The same class must produce identical outcomes and traces across
	// repeated runs (map-iteration nondeterminism would break the
	// fuzzing loop).
	f := helloClass("MDet")
	f.AddField(classfile.AccPublic|classfile.AccStatic, "a", "I")
	f.AddField(classfile.AccPrivate, "b", "Ljava/lang/String;")
	data, _ := f.Bytes()
	vm := New(HotSpot9())
	rec := coverage.NewRecorder(ProbeRegistry())
	vm.SetRecorder(rec)
	vm.Run(data)
	first := rec.Trace()
	for i := 0; i < 5; i++ {
		rec.Reset()
		o := vm.Run(data)
		if !o.OK() {
			t.Fatalf("run %d: %s", i, o)
		}
		if !rec.Trace().EqualSets(first) {
			t.Fatalf("run %d produced a different trace", i)
		}
	}
}

func TestOutcomeEncoding(t *testing.T) {
	if (Outcome{Phase: PhaseInvoked}).Code() != 0 {
		t.Error("invoked must encode as 0")
	}
	if (Outcome{Phase: PhaseLinking}).Code() != 2 {
		t.Error("linking must encode as 2")
	}
	o := reject(PhaseLoading, ErrClassFormat, "x %d", 7)
	if o.Error != ErrClassFormat || o.Message != "x 7" || o.OK() {
		t.Errorf("reject built %+v", o)
	}
	if (Outcome{Phase: PhaseInvoked}).String() != "invoked normally" {
		t.Error("String for invoked")
	}
}

func TestSharedEnvironmentMode(t *testing.T) {
	// Definition 2: running HotSpot 7 and HotSpot 8 against the *same*
	// environment removes the EnumEditor compatibility discrepancy.
	f := helloClass("MEnv")
	f.SetSuper("com/sun/beans/editors/EnumEditor")
	f.Methods = f.Methods[1:]
	data, _ := f.Bytes()

	env7 := New(HotSpot7()).Env
	vm7 := NewWithEnv(HotSpot7(), env7)
	vm8 := NewWithEnv(HotSpot8(), env7)
	o7, o8 := vm7.Run(data), vm8.Run(data)
	if o7.Code() != o8.Code() {
		t.Errorf("same environment should agree: %s vs %s", o7, o8)
	}
}
