package jvm

import (
	"repro/internal/classfile"
	"repro/internal/rtlib"
)

// execState is the per-run mutable state: the class under test, its
// static fields, captured output and the interpreter budget.
type execState struct {
	vm      *VM
	f       *classfile.File
	name    string
	statics map[string]value
	output  []string
	steps   int
	depth   int
	// verified memoises per-method lazy verification results keyed by
	// name+descriptor.
	verified map[string]*Outcome
	// vkey lazily caches the class's verification-key context for the
	// cross-run memo (built on the first verifyMethod call).
	vkey *VerifyKeyCtx
}

func newExecState(vm *VM, f *classfile.File) *execState {
	return &execState{
		vm:       vm,
		f:        f,
		name:     f.Name(),
		statics:  make(map[string]value),
		verified: make(map[string]*Outcome),
	}
}

// classKind says where a resolved class lives.
type classKind int

const (
	kindSelf classKind = iota
	kindPlatform
	kindMissing
)

// resolveClass locates a class by internal name: the class under test
// itself, a platform class, or missing.
func (ex *execState) resolveClass(name string) (classKind, *rtlib.ClassInfo) {
	if name == ex.name {
		return kindSelf, nil
	}
	if ci, ok := ex.vm.Env.Lookup(name); ok {
		return kindPlatform, ci
	}
	return kindMissing, nil
}

// link performs the linking phase: hierarchy well-formedness,
// (optionally) eager resolution of every symbolic reference, the
// throws-clause accessibility check, and (optionally) eager
// verification of every method body. Errors here use the linking-phase
// error classes of Table 1.
func (vm *VM) link(ex *execState) (Outcome, bool) {
	p := &vm.Spec.Policy
	f := ex.f
	vm.st(pLinkEnter)

	// ---- superclass hierarchy -------------------------------------------
	super := f.SuperName()
	if super != "" {
		if vm.br(bLinkSuperSelf, super == ex.name) {
			return reject(PhaseLoading, ErrClassCircularity, "class %s is its own superclass", ex.name), true
		}
		kind, ci := ex.resolveClass(super)
		if vm.br(bLinkSuperMissing, kind == kindMissing) {
			// Superclass resolution failure surfaces while creating the
			// class, i.e. in the loading phase (Table 1).
			return reject(PhaseLoading, ErrNoClassDef, "superclass %s", super), true
		}
		if kind == kindPlatform {
			if vm.br(bLinkSuperInterface, ci.Interface && !f.IsInterface()) {
				return reject(PhaseLinking, ErrIncompatibleChange, "class %s has interface %s as superclass", ex.name, super), true
			}
			if f.IsInterface() && p.CheckInterfaceSuperObject {
				// Already rejected at load when the name wasn't Object; the
				// branch here covers Object-with-different-resolution cases.
				vm.st(pLinkSuperIfaceobject)
			}
			if p.CheckSuperNotFinal && vm.br(bLinkSuperFinal, ci.Final) {
				return reject(PhaseLinking, ErrVerify, "class %s cannot subclass final class %s", ex.name, super), true
			}
			if p.CheckResolvedAccess && vm.br(bLinkSuperAccess, !ci.Accessible) {
				return reject(PhaseLinking, ErrIllegalAccess, "superclass %s is not accessible", super), true
			}
		}
	}

	// ---- implemented interfaces -------------------------------------------
	for _, idx := range f.Interfaces {
		iname, _ := f.Pool.ClassName(idx)
		vm.st(pLinkIfaceEntry)
		if vm.br(bLinkIfaceSelf, iname == ex.name) {
			return reject(PhaseLoading, ErrClassCircularity, "class %s implements itself", ex.name), true
		}
		kind, ci := ex.resolveClass(iname)
		if kind == kindMissing {
			if vm.br(bLinkIfaceMissing, p.EagerResolution) {
				return reject(PhaseLoading, ErrNoClassDef, "interface %s", iname), true
			}
			continue
		}
		if kind == kindPlatform {
			// Lazily-resolving VMs only discover a class in the interface
			// table when a method is actually looked up through it, which
			// the startup pipeline never does for unused interfaces.
			if p.EagerResolution && vm.br(bLinkIfaceNotinterface, !ci.Interface) {
				return reject(PhaseLinking, ErrIncompatibleChange, "class %s implements non-interface %s", ex.name, iname), true
			}
			if p.CheckResolvedAccess && vm.br(bLinkIfaceAccess, !ci.Accessible) {
				return reject(PhaseLinking, ErrIllegalAccess, "interface %s is not accessible", iname), true
			}
		}
	}

	// ---- throws clauses (Problem 3) -----------------------------------------
	if p.CheckThrowsClause {
		for _, m := range f.Methods {
			exAttr := m.Exceptions()
			if exAttr == nil {
				continue
			}
			for _, cidx := range exAttr.Classes {
				vm.st(pLinkThrowsEntry)
				tname, ok := f.Pool.ClassName(cidx)
				if vm.br(bLinkThrowsCp, !ok) {
					return reject(PhaseLinking, ErrClassFormat, "method %s throws entry #%d is not a class", m.Name(f.Pool), cidx), true
				}
				kind, ci := ex.resolveClass(tname)
				if vm.br(bLinkThrowsMissing, kind == kindMissing) {
					return reject(PhaseLinking, ErrNoClassDef, "%s (declared thrown by %s)", tname, m.Name(f.Pool)), true
				}
				if kind == kindPlatform && vm.br(bLinkThrowsAccess, !ci.Accessible) {
					// HotSpot's IllegalAccessError for
					// sun.java2d.pisces.PiscesRenderingEngine$2.
					return reject(PhaseLinking, ErrIllegalAccess, "class %s (declared thrown by %s) is not accessible", tname, m.Name(f.Pool)), true
				}
			}
		}
	}

	// ---- eager symbolic resolution ---------------------------------------------
	if p.EagerResolution {
		if out, bad := vm.resolveAllRefs(ex); bad {
			return out, true
		}
	}

	// ---- eager verification --------------------------------------------------
	if p.EagerVerify {
		for _, m := range f.Methods {
			if m.Code() == nil {
				continue
			}
			if out := vm.verifyMethod(ex, m); out != nil {
				return *out, true
			}
		}
	}

	vm.st(pLinkOk)
	return Outcome{}, false
}

// resolveAllRefs walks every Fieldref/Methodref/InterfaceMethodref in
// the pool and resolves it against the class itself or the platform
// library, reproducing the eager resolution failures (NoClassDefFound,
// NoSuchField/Method, IllegalAccess) at the linking phase.
func (vm *VM) resolveAllRefs(ex *execState) (Outcome, bool) {
	p := &vm.Spec.Policy
	f := ex.f
	vm.st(pLinkResolveEnter)
	for i := 1; i < f.Pool.Count(); i++ {
		c := f.Pool.Get(uint16(i))
		if c == nil {
			continue
		}
		var isField bool
		switch c.Tag {
		case classfile.TagFieldref:
			isField = true
		case classfile.TagMethodref, classfile.TagInterfaceMethodref:
			isField = false
		default:
			continue
		}
		cls, name, desc, ok := f.Pool.MemberRef(uint16(i))
		if vm.br(bLinkResolveShape, !ok) {
			return reject(PhaseLinking, ErrClassFormat, "member reference #%d is malformed", i), true
		}
		vm.st(pLinkResolveEntry)
		kind, ci := ex.resolveClass(cls)
		if vm.br(bLinkResolveClassmissing, kind == kindMissing) {
			return reject(PhaseLinking, ErrNoClassDef, "%s", cls), true
		}
		if kind == kindPlatform && p.CheckResolvedAccess && vm.br(bLinkResolveAccess, !ci.Accessible) {
			return reject(PhaseLinking, ErrIllegalAccess, "class %s is not accessible", cls), true
		}
		if isField {
			if vm.br(bLinkResolveFieldfound, !ex.fieldExists(cls, name, desc)) {
				return reject(PhaseLinking, ErrNoSuchField, "%s.%s:%s", cls, name, desc), true
			}
		} else {
			if vm.br(bLinkResolveMethodfound, !ex.methodExists(cls, name, desc)) {
				return reject(PhaseLinking, ErrNoSuchMethod, "%s.%s%s", cls, name, desc), true
			}
		}
	}
	vm.st(pLinkResolveOk)
	return Outcome{}, false
}

// fieldExists resolves a field against the class itself (including its
// platform superclass chain) or a platform class hierarchy.
func (ex *execState) fieldExists(cls, name, desc string) bool {
	if cls == ex.name {
		for _, fl := range ex.f.Fields {
			if fl.Name(ex.f.Pool) == name && fl.Descriptor(ex.f.Pool) == desc {
				return true
			}
		}
		return ex.platformFieldExists(ex.f.SuperName(), name, desc)
	}
	return ex.platformFieldExists(cls, name, desc)
}

func (ex *execState) platformFieldExists(cls, name, desc string) bool {
	for cur := cls; cur != ""; {
		ci, ok := ex.vm.Env.Lookup(cur)
		if !ok {
			return false
		}
		if ci.HasField(name, desc) {
			return true
		}
		cur = ci.Super
	}
	return false
}

// methodExists resolves a method like fieldExists does, also searching
// superinterfaces of platform classes.
func (ex *execState) methodExists(cls, name, desc string) bool {
	if cls == ex.name {
		for _, m := range ex.f.Methods {
			if m.Name(ex.f.Pool) == name && m.Descriptor(ex.f.Pool) == desc {
				return true
			}
		}
		return ex.platformMethodExists(ex.f.SuperName(), name, desc)
	}
	return ex.platformMethodExists(cls, name, desc)
}

func (ex *execState) platformMethodExists(cls, name, desc string) bool {
	seen := map[string]bool{}
	var walk func(n string) bool
	walk = func(n string) bool {
		if n == "" || seen[n] {
			return false
		}
		seen[n] = true
		ci, ok := ex.vm.Env.Lookup(n)
		if !ok {
			return false
		}
		if ci.HasMethod(name, desc) {
			return true
		}
		for _, i := range ci.Interfaces {
			if walk(i) {
				return true
			}
		}
		return walk(ci.Super)
	}
	return walk(cls)
}

// verifyMethod runs the dataflow verifier over one method, memoising
// the result for lazy-verification VMs. It returns nil when the method
// verifies, or the rejection outcome (linking phase; lazy callers
// re-phase it). With a VerifyMemo attached the verdict is additionally
// shared across runs at method granularity (verifyMethodMemo).
func (vm *VM) verifyMethod(ex *execState, m *classfile.Member) *Outcome {
	key := m.Name(ex.f.Pool) + m.Descriptor(ex.f.Pool)
	if out, ok := ex.verified[key]; ok {
		return out
	}
	out := vm.verifyMethodMemo(ex, m)
	ex.verified[key] = out
	return out
}
