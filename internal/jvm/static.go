package jvm

import (
	"repro/internal/classfile"
	"repro/internal/rtlib"
)

// VerifyMethodStatic runs spec's dataflow verifier over one method of f
// without executing anything, for internal/analysis's static oracle.
// The oracle deliberately shares the real verifier rather than
// re-deriving the ~1k-line dataflow rules: verification has no side
// effects, so predicted and actual outcomes can only diverge if the
// surrounding phase logic disagrees — which is exactly what the
// cross-check is meant to catch. No recorder is attached, so coverage
// probes are no-ops and the call cannot perturb a fuzzing campaign.
// The result is nil when the method verifies, or the linking-phase
// rejection (callers re-phase it for lazy verification points).
func VerifyMethodStatic(spec Spec, env *rtlib.Env, f *classfile.File, m *classfile.Member) *Outcome {
	vm := NewWithEnv(spec, env)
	ex := newExecState(vm, f)
	return vm.verifyMethod(ex, m)
}
