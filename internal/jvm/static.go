package jvm

import (
	"repro/internal/classfile"
	"repro/internal/rtlib"
)

// VerifyMethodStatic runs spec's runtime dataflow verifier over one
// method of f without executing anything. The static oracle now has its
// own independent implementation (internal/analysis/dataflow); this
// entry point remains as the VM-side reference that the differential
// fuzz harness compares the independent analysis against — two
// implementations of the §4.10 rules checking each other, in the same
// spirit as the five-VM lineup. No recorder is attached, so coverage
// probes are no-ops and the call cannot perturb a fuzzing campaign.
// The result is nil when the method verifies, or the linking-phase
// rejection (callers re-phase it for lazy verification points).
func VerifyMethodStatic(spec Spec, env *rtlib.Env, f *classfile.File, m *classfile.Member) *Outcome {
	vm := NewWithEnv(spec, env)
	ex := newExecState(vm, f)
	return vm.verifyMethod(ex, m)
}
