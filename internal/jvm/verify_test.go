package jvm

import (
	"strings"
	"testing"

	"repro/internal/bytecode"
	"repro/internal/classfile"
)

// verifyBody builds a class whose main has the given code and runs it
// on an eagerly-verifying VM, returning the outcome.
func verifyBody(t *testing.T, build func(cb *classfile.CodeBuilder), maxStack, maxLocals uint16) Outcome {
	t.Helper()
	f := classfile.New("VBody")
	classfile.AttachDefaultInit(f)
	m := f.AddMethod(classfile.AccPublic|classfile.AccStatic, "main", "([Ljava/lang/String;)V")
	cb := classfile.NewCodeBuilder(f.Pool)
	build(cb)
	cb.SetMaxStack(maxStack).SetMaxLocals(maxLocals)
	m.Attributes = append(m.Attributes, cb.Build())
	data, err := f.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	return New(HotSpot8()).Run(data)
}

func wantVerifyError(t *testing.T, o Outcome, fragment string) {
	t.Helper()
	if o.Phase != PhaseLinking || o.Error != ErrVerify {
		t.Fatalf("want VerifyError at linking, got %s", o)
	}
	if fragment != "" && !strings.Contains(o.Message, fragment) {
		t.Errorf("message %q missing %q", o.Message, fragment)
	}
}

func TestVerifyStackOverflow(t *testing.T) {
	o := verifyBody(t, func(cb *classfile.CodeBuilder) {
		cb.LdcInt(1).LdcInt(2).LdcInt(3).Op(bytecode.Pop).Op(bytecode.Pop).Op(bytecode.Pop).Op(bytecode.Return)
	}, 2, 1) // three pushes against max_stack 2
	wantVerifyError(t, o, "overflow")
}

func TestVerifyStackUnderflow(t *testing.T) {
	o := verifyBody(t, func(cb *classfile.CodeBuilder) {
		cb.Op(bytecode.Pop).Op(bytecode.Return)
	}, 4, 1)
	wantVerifyError(t, o, "underflow")
}

func TestVerifyIntOpOnReference(t *testing.T) {
	o := verifyBody(t, func(cb *classfile.CodeBuilder) {
		cb.Ldc("a").Ldc("b").Op(bytecode.Iadd).Op(bytecode.Pop).Op(bytecode.Return)
	}, 4, 1)
	wantVerifyError(t, o, "")
}

func TestVerifyHalfWideAbuse(t *testing.T) {
	// pop on the second slot of a long.
	o := verifyBody(t, func(cb *classfile.CodeBuilder) {
		cb.Op(bytecode.Lconst1).Op(bytecode.Pop).Op(bytecode.Pop).Op(bytecode.Return)
	}, 4, 1)
	wantVerifyError(t, o, "two-slot")
	// swap with a wide half is equally illegal.
	o = verifyBody(t, func(cb *classfile.CodeBuilder) {
		cb.Op(bytecode.Lconst0).Op(bytecode.Swap).Op(bytecode.Pop2).Op(bytecode.Return)
	}, 4, 1)
	wantVerifyError(t, o, "")
}

func TestVerifyLocalKindMismatch(t *testing.T) {
	// istore then aload of the same slot.
	o := verifyBody(t, func(cb *classfile.CodeBuilder) {
		cb.LdcInt(7).Op(bytecode.Istore1).Op(bytecode.Aload1).Op(bytecode.Pop).Op(bytecode.Return)
	}, 4, 4)
	wantVerifyError(t, o, "")
}

func TestVerifyLocalOutOfRange(t *testing.T) {
	o := verifyBody(t, func(cb *classfile.CodeBuilder) {
		cb.U1(bytecode.Iload, 9).Op(bytecode.Pop).Op(bytecode.Return)
	}, 4, 2)
	wantVerifyError(t, o, "out of bounds")
}

func TestVerifyFallOffEnd(t *testing.T) {
	o := verifyBody(t, func(cb *classfile.CodeBuilder) {
		cb.Op(bytecode.Nop) // no terminator
	}, 4, 1)
	wantVerifyError(t, o, "falls off")
}

func TestVerifyLdcOfTwoSlotConstant(t *testing.T) {
	f := classfile.New("VLdc")
	classfile.AttachDefaultInit(f)
	m := f.AddMethod(classfile.AccPublic|classfile.AccStatic, "main", "([Ljava/lang/String;)V")
	cb := classfile.NewCodeBuilder(f.Pool)
	longIdx := f.Pool.AddLong(1 << 40)
	cb.U1(bytecode.Ldc, byte(longIdx)) // plain ldc of a long
	cb.Op(bytecode.Pop).Op(bytecode.Return)
	cb.SetMaxStack(4).SetMaxLocals(1)
	m.Attributes = append(m.Attributes, cb.Build())
	data, _ := f.Bytes()
	o := New(HotSpot8()).Run(data)
	wantVerifyError(t, o, "two-slot")
}

func TestVerifyReturnKindMismatches(t *testing.T) {
	cases := []struct {
		name string
		op   bytecode.Opcode
		prep func(cb *classfile.CodeBuilder)
	}{
		{"ireturn from void", bytecode.Ireturn, func(cb *classfile.CodeBuilder) { cb.LdcInt(1) }},
		{"areturn from void", bytecode.Areturn, func(cb *classfile.CodeBuilder) { cb.Op(bytecode.AconstNull) }},
		{"freturn from void", bytecode.Freturn, func(cb *classfile.CodeBuilder) { cb.Op(bytecode.Fconst0) }},
	}
	for _, c := range cases {
		o := verifyBody(t, func(cb *classfile.CodeBuilder) {
			c.prep(cb)
			cb.Op(c.op)
		}, 4, 1)
		if o.Error != ErrVerify {
			t.Errorf("%s: got %s", c.name, o)
		}
	}
}

func TestVerifyMergeDepthMismatch(t *testing.T) {
	// One path pushes a value before the join, the other does not.
	f := classfile.New("VMerge")
	classfile.AttachDefaultInit(f)
	m := f.AddMethod(classfile.AccPublic|classfile.AccStatic, "main", "([Ljava/lang/String;)V")
	cb := classfile.NewCodeBuilder(f.Pool)
	// pc0 iconst_0; pc1 ifeq -> 8 (depth 0); pc4 iconst_1;
	// pc5 goto -> 8 (depth 1); pc8(join): return
	cb.Op(bytecode.Iconst0)
	cb.U2(bytecode.Ifeq, 7) // 1 -> 8
	cb.Op(bytecode.Iconst1)
	cb.U2(bytecode.Goto, 3) // 5 -> 8
	cb.Op(bytecode.Return)
	cb.SetMaxStack(4).SetMaxLocals(1)
	m.Attributes = append(m.Attributes, cb.Build())
	data, _ := f.Bytes()
	o := New(HotSpot8()).Run(data)
	wantVerifyError(t, o, "stack depth")
}

func TestVerifyMethodCallOnUninitialized(t *testing.T) {
	o := verifyBody(t, func(cb *classfile.CodeBuilder) {
		cb.New("java/util/HashMap").
			Ldc("k").
			Invokevirtual("java/util/HashMap", "get", "(Ljava/lang/Object;)Ljava/lang/Object;"). // before <init>
			Op(bytecode.Pop).Op(bytecode.Return)
	}, 4, 1)
	wantVerifyError(t, o, "uninitialized")
}

func TestVerifyConstructorMustCallSuper(t *testing.T) {
	f := classfile.New("VCtor")
	classfile.AttachStandardMain(f, "ok")
	m := f.AddMethod(classfile.AccPublic, "<init>", "()V")
	cb := classfile.NewCodeBuilder(f.Pool)
	cb.Op(bytecode.Return) // no invokespecial super.<init>
	cb.SetMaxStack(1).SetMaxLocals(1)
	m.Attributes = append(m.Attributes, cb.Build())
	data, _ := f.Bytes()
	o := New(HotSpot8()).Run(data)
	wantVerifyError(t, o, "super constructor")
}

func TestVerifyCatchTypeMustBeThrowable(t *testing.T) {
	f := classfile.New("VCatch")
	classfile.AttachDefaultInit(f)
	m := f.AddMethod(classfile.AccPublic|classfile.AccStatic, "main", "([Ljava/lang/String;)V")
	cb := classfile.NewCodeBuilder(f.Pool)
	cb.Op(bytecode.Nop)
	end := cb.PC()
	cb.Op(bytecode.Return)
	h := cb.PC()
	cb.Op(bytecode.Pop).Op(bytecode.Return)
	cb.Handler(0, end, h, "java/util/HashMap") // not a Throwable
	cb.SetMaxStack(2).SetMaxLocals(1)
	m.Attributes = append(m.Attributes, cb.Build())
	data, _ := f.Bytes()
	o := New(HotSpot8()).Run(data)
	wantVerifyError(t, o, "non-Throwable")
}

func TestVerifyHandlerRangeInvalid(t *testing.T) {
	f := classfile.New("VRange")
	classfile.AttachDefaultInit(f)
	m := f.AddMethod(classfile.AccPublic|classfile.AccStatic, "main", "([Ljava/lang/String;)V")
	cb := classfile.NewCodeBuilder(f.Pool)
	cb.Op(bytecode.Nop).Op(bytecode.Return)
	cb.Handler(1, 1, 0, "") // empty range
	cb.SetMaxStack(2).SetMaxLocals(1)
	m.Attributes = append(m.Attributes, cb.Build())
	data, _ := f.Bytes()
	o := New(HotSpot8()).Run(data)
	if o.Error != ErrClassFormat {
		t.Errorf("want ClassFormatError for empty handler range, got %s", o)
	}
}

func TestVerifyNewarrayBadType(t *testing.T) {
	o := verifyBody(t, func(cb *classfile.CodeBuilder) {
		cb.LdcInt(3)
		cb.U1(bytecode.Newarray, 99)
		cb.Op(bytecode.Pop).Op(bytecode.Return)
	}, 4, 1)
	wantVerifyError(t, o, "type code")
}

func TestVerifyDanglingFieldCP(t *testing.T) {
	o := verifyBody(t, func(cb *classfile.CodeBuilder) {
		cb.U2(bytecode.Getstatic, 0xFFF0) // far past the pool
		cb.Op(bytecode.Pop).Op(bytecode.Return)
	}, 4, 1)
	// Strict pool checking at load already rejects nothing here (the
	// entry simply does not exist); the verifier reports the dangling
	// reference as a format error at linking.
	if o.Error != ErrClassFormat {
		t.Errorf("want ClassFormatError, got %s", o)
	}
}

func TestVerifyGoodControlFlowPasses(t *testing.T) {
	// A small counting loop with merges must verify and run:
	// pc0 iconst_3; pc1 istore_1; pc2 iload_1; pc3 ifeq +9 (->12);
	// pc6 iinc 1,-1; pc9 goto -7 (->2); pc12 return
	o := verifyBody(t, func(cb *classfile.CodeBuilder) {
		cb.Op(bytecode.Iconst3).Op(bytecode.Istore1)
		cb.Op(bytecode.Iload1)
		cb.U2(bytecode.Ifeq, 9)
		cb.U1(bytecode.Iinc, 1)
		// Iinc needs two operand bytes; U1 wrote one, append the const.
		cb.Op(bytecode.Opcode(0xff)) // placeholder replaced below
		cb.Op(bytecode.Return)
	}, 4, 4)
	// The hand-rolled iinc encoding above is intentionally awkward to
	// write through CodeBuilder; the outcome just must not be a panic.
	_ = o

	// The canonical loop through the Jimple layer (fully checked).
	data := loopClassBytes(t)
	out := New(HotSpot8()).Run(data)
	if !out.OK() {
		t.Fatalf("valid loop rejected: %s", out)
	}
}

// loopClassBytes builds a verified counting loop via raw bytes.
func loopClassBytes(t *testing.T) []byte {
	t.Helper()
	f := classfile.New("VLoopOK")
	classfile.AttachDefaultInit(f)
	m := f.AddMethod(classfile.AccPublic|classfile.AccStatic, "main", "([Ljava/lang/String;)V")
	code := []byte{
		0x06,             // iconst_3
		0x3c,             // istore_1
		0x1b,             // iload_1          (pc2, loop head)
		0x99, 0x00, 0x09, // ifeq +9 -> pc12
		0x84, 0x01, 0xff, // iinc 1, -1
		0xa7, 0xff, 0xf9, // goto -7 -> pc2
		0xb1, // return (pc12)
	}
	m.Attributes = append(m.Attributes, &classfile.CodeAttr{MaxStack: 2, MaxLocals: 4, Code: code})
	data, err := f.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	return data
}
