package jvm

import (
	"repro/internal/classfile"
	"repro/internal/coverage"
	"repro/internal/rtlib"
)

// VM is one simulated JVM implementation bound to a runtime library
// environment. A VM is stateless across runs; Run creates fresh
// per-execution state, so one VM may be reused for many classfiles.
type VM struct {
	Spec Spec
	Env  *rtlib.Env
	cov  *coverage.Recorder
}

// New builds a VM from a spec, constructing the matching library
// environment (the e of jvm(e, c, i)).
func New(spec Spec) *VM {
	return &VM{Spec: spec, Env: rtlib.NewEnv(spec.Release)}
}

// NewWithEnv builds a VM bound to an explicit environment. Running two
// VMs against the same environment is how Definition 2 separates JVM
// defects from compatibility discrepancies.
func NewWithEnv(spec Spec, env *rtlib.Env) *VM {
	return &VM{Spec: spec, Env: env}
}

// Name returns the VM's display name.
func (vm *VM) Name() string { return vm.Spec.Name }

// SetRecorder attaches a coverage recorder; pass nil to detach. The
// recorder is only attached to the reference VM during fuzzing.
func (vm *VM) SetRecorder(r *coverage.Recorder) { vm.cov = r }

// st fires a statement probe.
func (vm *VM) st(id string) { vm.cov.Stmt(id) }

// br fires a statement probe plus a branch probe for cond, and returns
// cond so checks read naturally: if vm.br("load.x", bad) { ... }.
func (vm *VM) br(id string, cond bool) bool {
	vm.cov.Stmt(id)
	vm.cov.Branch(id, cond)
	return cond
}

// Run parses and executes raw classfile bytes through the full startup
// pipeline, returning the observable outcome.
func (vm *VM) Run(data []byte) Outcome {
	vm.st("parse.enter")
	f, err := classfile.Parse(data)
	if vm.br("parse.wellformed", err != nil) {
		return reject(PhaseLoading, ErrClassFormat, "%v", err)
	}
	return vm.RunFile(f)
}

// RunFile executes an already-parsed classfile. The file is not
// modified.
func (vm *VM) RunFile(f *classfile.File) Outcome {
	if out, bad := vm.load(f); bad {
		return out
	}
	ex := newExecState(vm, f)
	if out, bad := vm.link(ex); bad {
		return out
	}
	if out, bad := vm.initialize(ex); bad {
		return out
	}
	return vm.invoke(ex)
}
