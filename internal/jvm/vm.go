package jvm

import (
	"repro/internal/bytecode"
	"repro/internal/classfile"
	"repro/internal/coverage"
	"repro/internal/rtlib"
	"repro/internal/telemetry"
)

// VM is one simulated JVM implementation bound to a runtime library
// environment. A VM is stateless across runs; Run creates fresh
// per-execution state, so one VM may be reused for many classfiles.
type VM struct {
	Spec Spec
	Env  *rtlib.Env
	cov  *coverage.Recorder

	// Lazily-interned probe caches for the two unbounded dynamic probe
	// families (platform intrinsics, verifier error names). Per-VM maps
	// so the warm path is a lock-free, allocation-free lookup; misses
	// intern through the shared package registry.
	platProbes map[platformProbeKey]coverage.StmtID
	verifyErrs map[string]coverage.StmtID

	// tel, when attached via SetTelemetry, times the startup pipeline:
	// one histogram per stage (named by the Phase constants) plus parse
	// timing and a run counter, all keyed by the VM's spec name. Nil by
	// default so the untimed path pays a single pointer check.
	tel *vmTel

	// decodeCache memoises bytecode decoding by code bytes. Mutants
	// overwhelmingly share method bodies (the generated main, <init>,
	// unmutated seed methods), and within one run the verifier and the
	// interpreter both need the same decode, so the cache is hit far
	// more often than it is filled. Decoding is a pure function of the
	// bytes, so sharing entries across runs cannot change outcomes.
	// Lazily created unless a shared cache is attached via
	// SetDecodeCache/ShareDecodeCache.
	decodeCache *DecodeCache

	// vscratch recycles the verifier's working storage (frames, entry
	// states, worklist) across runVerifier calls. Safe as a single
	// per-VM value because method verification never nests: the
	// verifier resolves classes through flat Env lookups, it does not
	// link them.
	vscratch verifyScratch

	// verifyMemo, when attached via SetVerifyMemo, memoises per-method
	// verification verdicts across runs (and across VMs sharing the
	// memo) keyed by MethodKey. vcap is the lazily-created scratch
	// recorder verifyMethodMemo swaps in to capture the verifier's
	// probe footprint on a miss.
	verifyMemo *VerifyMemo
	vcap       *coverage.Recorder
}

type platformProbeKey struct{ cls, name string }

// decodedCode is an immutable decode of one method body, shared across
// runs and between the verifier and the interpreter. targets caches
// Targets() per instruction (nil for non-branching ops).
type decodedCode struct {
	ins     []*bytecode.Instruction
	pcIndex map[int]int
	targets [][]int
	err     error
}

// decodeCacheMax bounds the live generation; when full the cache
// rotates generations instead of dropping everything (entries are pure
// functions of their keys, so eviction can only cost a redundant
// decode).
const decodeCacheMax = 4096

// DecodeCache is a bytecode-decode memo that may be shared by several
// VMs: decoding is policy-independent (a pure function of the code
// bytes), so one cache can serve a whole differential lineup and each
// shared method body is decoded once instead of once per VM. It is not
// safe for concurrent use — share a cache only among VMs driven from
// one goroutine (each worker lineup owns its own).
//
// Eviction is generational second-chance: at decodeCacheMax the live
// map is demoted to the previous generation and a fresh one started;
// a body found in the previous generation is promoted back into the
// live map. Hot bodies (the generated main, <init>, shared seed
// methods) therefore survive rotation indefinitely, instead of the old
// wholesale reset cold-starting every decode on long daemon runs.
type DecodeCache struct {
	m         map[string]*decodedCode
	prev      map[string]*decodedCode
	evictions uint64
}

// NewDecodeCache returns an empty cache.
func NewDecodeCache() *DecodeCache { return &DecodeCache{} }

// Evictions returns how many generation rotations the cache has done.
func (c *DecodeCache) Evictions() uint64 { return c.evictions }

func (c *DecodeCache) get(code []byte) (*decodedCode, bool) {
	if d, ok := c.m[string(code)]; ok {
		return d, true
	}
	if d, ok := c.prev[string(code)]; ok {
		// Second chance: promote into the live generation so the entry
		// survives the next rotation too.
		if c.m == nil {
			c.m = make(map[string]*decodedCode, 64)
		}
		c.m[string(code)] = d
		return d, true
	}
	return nil, false
}

// put inserts a decode, rotating generations when the live map is full.
// rotated reports that a rotation happened (for the eviction counter).
func (c *DecodeCache) put(code []byte, d *decodedCode) (rotated bool) {
	if c.m == nil {
		c.m = make(map[string]*decodedCode, 64)
	} else if len(c.m) >= decodeCacheMax {
		c.prev = c.m
		c.m = make(map[string]*decodedCode, 64)
		c.evictions++
		rotated = true
	}
	c.m[string(code)] = d
	return rotated
}

// SetDecodeCache attaches a decode cache (pass nil to detach; the VM
// then lazily creates a private one).
func (vm *VM) SetDecodeCache(c *DecodeCache) { vm.decodeCache = c }

// ShareDecodeCache binds one fresh decode cache to every VM of a
// lineup and returns it. The caller must drive the lineup from a
// single goroutine.
func ShareDecodeCache(vms []*VM) *DecodeCache {
	c := NewDecodeCache()
	for _, vm := range vms {
		vm.SetDecodeCache(c)
	}
	return c
}

func (vm *VM) decodeCode(code []byte) *decodedCode {
	if vm.decodeCache == nil {
		vm.decodeCache = NewDecodeCache()
	}
	if d, ok := vm.decodeCache.get(code); ok {
		return d
	}
	d := &decodedCode{}
	d.ins, d.err = bytecode.Decode(code)
	if d.err == nil {
		d.pcIndex = make(map[int]int, len(d.ins))
		for i, in := range d.ins {
			d.pcIndex[in.PC] = i
		}
		d.targets = make([][]int, len(d.ins))
		for i, in := range d.ins {
			d.targets[i] = in.Targets()
		}
	}
	if vm.decodeCache.put(code, d) && vm.tel != nil {
		vm.tel.decodeEvict.Inc()
	}
	return d
}

// New builds a VM from a spec, constructing the matching library
// environment (the e of jvm(e, c, i)).
func New(spec Spec) *VM {
	return &VM{Spec: spec, Env: rtlib.NewEnv(spec.Release)}
}

// NewWithEnv builds a VM bound to an explicit environment. Running two
// VMs against the same environment is how Definition 2 separates JVM
// defects from compatibility discrepancies.
func NewWithEnv(spec Spec, env *rtlib.Env) *VM {
	return &VM{Spec: spec, Env: env}
}

// Name returns the VM's display name.
func (vm *VM) Name() string { return vm.Spec.Name }

// SetRecorder attaches a coverage recorder; pass nil to detach. The
// recorder is only attached to the reference VM during fuzzing.
func (vm *VM) SetRecorder(r *coverage.Recorder) { vm.cov = r }

// SetVerifyMemo attaches a method-verification memo (pass nil to
// detach; verification then always runs the verifier).
func (vm *VM) SetVerifyMemo(m *VerifyMemo) { vm.verifyMemo = m }

// vmTel holds a VM's interned telemetry handles: a run counter, parse
// timing, and one histogram per startup-pipeline stage. Stage indices
// follow the Phase constants (PhaseLoading..PhaseRuntime; PhaseInvoked
// has no stage of its own — it is the absence of a rejection).
type vmTel struct {
	runs        *telemetry.Counter
	parse       *telemetry.Histogram
	decodeEvict *telemetry.Counter
	phases      [PhaseCount]*telemetry.Histogram
}

// SetTelemetry attaches a metrics registry: every Run/RunParsed/RunFile
// then records per-stage wall time into histograms named
// "jvm.<spec>.phase.<phase>_ns" (plus "jvm.<spec>.parse_ns" and the
// counter "jvm.<spec>.runs"). Telemetry is observe-only — outcomes and
// coverage traces are unaffected. Pass nil to detach and return to the
// untimed path.
func (vm *VM) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		vm.tel = nil
		return
	}
	prefix := "jvm." + vm.Spec.Name
	t := &vmTel{
		runs:        reg.Counter(prefix + ".runs"),
		parse:       reg.Histogram(prefix + ".parse_ns"),
		decodeEvict: reg.Counter(prefix + ".decode_cache.evictions"),
	}
	for _, p := range []Phase{PhaseLoading, PhaseLinking, PhaseInit, PhaseRuntime} {
		t.phases[p] = reg.Histogram(prefix + ".phase." + p.String() + "_ns")
	}
	vm.tel = t
}

// st fires a statement probe.
func (vm *VM) st(id coverage.StmtID) { vm.cov.Stmt(id) }

// br fires a statement probe plus a branch probe for cond, and returns
// cond so checks read naturally: if vm.br(bLoadX, bad) { ... }.
func (vm *VM) br(p coverage.BranchProbe, cond bool) bool {
	vm.cov.Stmt(p.Stmt)
	vm.cov.Branch(p.Branch, cond)
	return cond
}

// stPlatform fires the statement probe for a platform intrinsic call
// site ("interp.platform.<class>.<method>"). The (class, method) pair
// is classfile-controlled and unbounded, so the probe is interned on
// first sight and cached per VM; warm calls allocate nothing.
func (vm *VM) stPlatform(cls, name string) {
	if vm.cov == nil {
		return
	}
	k := platformProbeKey{cls, name}
	id, ok := vm.platProbes[k]
	if !ok {
		id = probes.Stmt("interp.platform." + cls + "." + name)
		if vm.platProbes == nil {
			vm.platProbes = make(map[platformProbeKey]coverage.StmtID)
		}
		vm.platProbes[k] = id
	}
	vm.cov.Stmt(id)
}

// stVerifyErr fires the statement probe for a verifier rejection class
// ("verify.err.<error>"), interning and caching like stPlatform.
func (vm *VM) stVerifyErr(errName string) {
	if vm.cov == nil {
		return
	}
	id, ok := vm.verifyErrs[errName]
	if !ok {
		id = probes.Stmt("verify.err." + errName)
		if vm.verifyErrs == nil {
			vm.verifyErrs = make(map[string]coverage.StmtID)
		}
		vm.verifyErrs[errName] = id
	}
	vm.cov.Stmt(id)
}

// Run parses and executes raw classfile bytes through the full startup
// pipeline, returning the observable outcome.
func (vm *VM) Run(data []byte) Outcome {
	if vm.tel != nil {
		vm.st(pParseEnter)
		sp := telemetry.StartSpan(vm.tel.parse)
		f, err := classfile.Parse(data)
		sp.End()
		if vm.br(bParseWellformed, err != nil) {
			vm.tel.runs.Inc()
			return ParseReject(err)
		}
		return vm.RunFile(f)
	}
	vm.st(pParseEnter)
	f, err := classfile.Parse(data)
	if vm.br(bParseWellformed, err != nil) {
		return ParseReject(err)
	}
	return vm.RunFile(f)
}

// ParseReject is the outcome every VM reports for bytes classfile.Parse
// rejects — the shared front half of Run. Parsing is VM-independent, so
// a caller that parses once (the difftest engine) fans the identical
// rejection out to the whole lineup.
func ParseReject(err error) Outcome {
	return reject(PhaseLoading, ErrClassFormat, "%v", err)
}

// RunParsed executes an already-parsed classfile while firing the same
// parse probes Run fires on well-formed input, so the coverage trace is
// bit-identical to a fresh Run over the file's bytes. Callers that have
// already parsed the bytes successfully (e.g. the campaign prefilter)
// use this to skip the redundant second parse.
func (vm *VM) RunParsed(f *classfile.File) Outcome {
	vm.st(pParseEnter)
	vm.br(bParseWellformed, false)
	return vm.RunFile(f)
}

// RunFile executes an already-parsed classfile. The file is not
// modified.
func (vm *VM) RunFile(f *classfile.File) Outcome {
	if vm.tel != nil {
		return vm.runFileTimed(f)
	}
	if out, bad := vm.load(f); bad {
		return out
	}
	ex := newExecState(vm, f)
	if out, bad := vm.link(ex); bad {
		return out
	}
	if out, bad := vm.initialize(ex); bad {
		return out
	}
	return vm.invoke(ex)
}

// runFileTimed is RunFile with a span around each pipeline stage. Kept
// separate so the untimed hot path never touches the clock.
func (vm *VM) runFileTimed(f *classfile.File) Outcome {
	vm.tel.runs.Inc()
	sp := telemetry.StartSpan(vm.tel.phases[PhaseLoading])
	out, bad := vm.load(f)
	sp.End()
	if bad {
		return out
	}
	ex := newExecState(vm, f)
	sp = telemetry.StartSpan(vm.tel.phases[PhaseLinking])
	out, bad = vm.link(ex)
	sp.End()
	if bad {
		return out
	}
	sp = telemetry.StartSpan(vm.tel.phases[PhaseInit])
	out, bad = vm.initialize(ex)
	sp.End()
	if bad {
		return out
	}
	sp = telemetry.StartSpan(vm.tel.phases[PhaseRuntime])
	out = vm.invoke(ex)
	sp.End()
	return out
}
