package jvm

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/bytecode"
	"repro/internal/classfile"
	"repro/internal/descriptor"
)

// value is one runtime value slot. Wide values (long/double) occupy a
// single value here; the interpreter handles slot accounting itself.
type value struct {
	kind byte // 'I', 'J', 'F', 'D', 'A'
	i    int64
	f    float64
	ref  *object // nil for null references
}

// object is a heap object: a plain instance, a string, an array or a
// builder. The simulation keeps just enough structure for the
// startup-time code the fuzzer generates.
type object struct {
	class  string
	fields map[string]value
	str    string // payload for java/lang/String
	arr    []value
	elem   string // array element descriptor
	sb     *strings.Builder
}

func intVal(v int64) value      { return value{kind: 'I', i: v} }
func longVal(v int64) value     { return value{kind: 'J', i: v} }
func floatVal(v float64) value  { return value{kind: 'F', f: v} }
func doubleVal(v float64) value { return value{kind: 'D', f: v} }
func refVal(o *object) value    { return value{kind: 'A', ref: o} }
func nullVal() value            { return value{kind: 'A'} }

func stringObj(s string) *object { return &object{class: "java/lang/String", str: s} }

// zeroOf returns the default value for a field descriptor.
func zeroOf(desc string) value {
	if desc == "" {
		return nullVal()
	}
	switch desc[0] {
	case 'J':
		return longVal(0)
	case 'F':
		return floatVal(0)
	case 'D':
		return doubleVal(0)
	case 'L', '[':
		return nullVal()
	default:
		return intVal(0)
	}
}

// javaThrow carries an in-flight Java exception through the interpreter.
type javaThrow struct {
	class string // internal name
	msg   string
}

func (t *javaThrow) errorName() string { return strings.ReplaceAll(t.class, "/", ".") }

func throwf(class, format string, args ...any) *javaThrow {
	return &javaThrow{class: class, msg: fmt.Sprintf(format, args...)}
}

// dot2slash converts the error-name constants back to internal names.
func dot2slash(name string) string {
	name = strings.TrimPrefix(name, "Error: ")
	return strings.ReplaceAll(name, ".", "/")
}

// initialize runs the initialization phase: execute the class
// initializer (when the policy classifies one) and apply the
// HotSpot 9-style strict access re-check. Failures surface as
// initialization-phase rejections (Table 1 row 3).
func (vm *VM) initialize(ex *execState) (Outcome, bool) {
	p := &vm.Spec.Policy
	vm.st(pInitEnter)

	// HotSpot 9 re-checks accessibility of every class named in the
	// constant pool when initialization touches the class (module
	// boundaries): the extra initialization-phase rejections of Table 7.
	if p.InitStrictAccess {
		for i := 1; i < ex.f.Pool.Count(); i++ {
			c := ex.f.Pool.Get(uint16(i))
			if c == nil || c.Tag != classfile.TagClass {
				continue
			}
			name, _ := ex.f.Pool.Utf8(c.Ref1)
			if name == "" || name == ex.name {
				continue
			}
			ci, ok := vm.Env.Lookup(name)
			if ok && vm.br(bInitAccess, !ci.Accessible) {
				return reject(PhaseInit, ErrIllegalAccess, "class %s is not accessible to the unnamed module", name), true
			}
		}
	}

	clinit := vm.classInitializer(ex.f)
	if vm.br(bInitHasclinit, clinit == nil) {
		vm.st(pInitOk)
		return Outcome{}, false
	}

	// Lazy VMs verify the initializer at first invocation, i.e. now.
	if !p.EagerVerify {
		if out := vm.verifyMethod(ex, clinit); out != nil {
			vm.st(pInitLazyverifyfail)
			return reject(PhaseInit, out.Error, "%s", out.Message), true
		}
	}

	_, jt := ex.callMethod(clinit, nil)
	if vm.br(bInitThrew, jt != nil) {
		// Errors pass through unchanged; exceptions are wrapped in
		// ExceptionInInitializerError (JVMS §5.5).
		if vm.Env.IsSubclassOf(jt.class, "java/lang/Error") {
			return reject(PhaseInit, jt.errorName(), "%s", jt.msg), true
		}
		return reject(PhaseInit, ErrExceptionInInitializer, "caused by %s: %s", jt.errorName(), jt.msg), true
	}
	vm.st(pInitOk)
	return Outcome{}, false
}

// classInitializer finds the method this VM treats as <clinit>,
// honouring the policy's classification rule.
func (vm *VM) classInitializer(f *classfile.File) *classfile.Member {
	for _, m := range f.Methods {
		if m.Name(f.Pool) != "<clinit>" {
			continue
		}
		switch vm.Spec.Policy.ClinitRule {
		case ClinitOrdinaryIfNonStatic:
			if m.AccessFlags.Has(classfile.AccStatic) && m.Descriptor(f.Pool) == "()V" {
				return m
			}
		case ClinitAlwaysInitializer:
			return m
		case ClinitIgnored:
			if m.AccessFlags.Has(classfile.AccStatic) && m.Code() != nil {
				return m
			}
		}
	}
	return nil
}

// invoke performs the final phase: locate and run main.
func (vm *VM) invoke(ex *execState) Outcome {
	p := &vm.Spec.Policy
	vm.st(pInvokeEnter)

	if ex.f.IsInterface() && vm.br(bInvokeInterface, !p.AllowInterfaceMain) {
		return reject(PhaseRuntime, ErrMainNotFound, "cannot invoke main on interface %s", ex.name)
	}

	main := ex.f.FindMethodExact("main", "([Ljava/lang/String;)V")
	if vm.br(bInvokeMainfound, main == nil) {
		return reject(PhaseRuntime, ErrMainNotFound, "in class %s", ex.name)
	}
	if p.RequireStaticMain {
		ok := main.AccessFlags.Has(classfile.AccPublic) && main.AccessFlags.Has(classfile.AccStatic)
		if vm.br(bInvokeMainflags, !ok) {
			return reject(PhaseRuntime, ErrMainNotFound, "main is not public static in class %s", ex.name)
		}
	}
	if vm.br(bInvokeMaincode, main.Code() == nil) {
		if main.AccessFlags.Has(classfile.AccAbstract) {
			return reject(PhaseRuntime, ErrAbstractMethod, "main")
		}
		return reject(PhaseRuntime, ErrUnsatisfiedLink, "main has no code")
	}

	if !p.EagerVerify {
		if out := vm.verifyMethod(ex, main); out != nil {
			vm.st(pInvokeLazyverifyfail)
			return reject(PhaseRuntime, out.Error, "%s", out.Message)
		}
	}

	args := refVal(&object{class: "[Ljava/lang/String;", elem: "Ljava/lang/String;"})
	_, jt := ex.callMethod(main, []value{args})
	if vm.br(bInvokeThrew, jt != nil) {
		return reject(PhaseRuntime, jt.errorName(), "%s", jt.msg)
	}
	vm.st(pInvokeOk)
	return Outcome{Phase: PhaseInvoked, Output: ex.output}
}

// maxCallDepth bounds self-recursive interpretation.
const maxCallDepth = 64

// callMethod interprets one method of the class under test.
func (ex *execState) callMethod(m *classfile.Member, args []value) (value, *javaThrow) {
	vm := ex.vm
	vm.st(pInterpCall)
	code := m.Code()
	if code == nil {
		return value{}, throwf(dot2slash(ErrUnsatisfiedLink), "%s has no code", m.Name(ex.f.Pool))
	}
	if ex.depth >= maxCallDepth {
		return value{}, throwf("java/lang/StackOverflowError", "interpreter call depth exceeded")
	}
	// Lazy VMs verify each method at its first invocation.
	if !vm.Spec.Policy.EagerVerify {
		if out := vm.verifyMethod(ex, m); out != nil {
			return value{}, throwf(dot2slash(out.Error), "%s", out.Message)
		}
	}
	ex.depth++
	defer func() { ex.depth-- }()

	dec := vm.decodeCode(code.Code)
	if dec.err != nil {
		return value{}, throwf(dot2slash(ErrVerify), "%v", dec.err)
	}
	ins, pcIndex := dec.ins, dec.pcIndex

	locals := make([]value, int(code.MaxLocals)+2)
	slot := 0
	for _, a := range args {
		if slot >= len(locals) {
			return value{}, throwf(dot2slash(ErrVerify), "arguments exceed max_locals")
		}
		locals[slot] = a
		slot++
		if a.kind == 'J' || a.kind == 'D' {
			slot++
		}
	}

	var stack []value
	pop := func() value {
		if len(stack) == 0 {
			return value{}
		}
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		return v
	}

	idx := 0
	for {
		ex.steps++
		if ex.steps > vm.Spec.Policy.StepBudget {
			return value{}, &javaThrow{class: "budget", msg: "step budget exhausted"}
		}
		if idx < 0 || idx >= len(ins) {
			return value{}, throwf(dot2slash(ErrVerify), "pc out of range")
		}
		in := ins[idx]
		op := in.Op
		if op == bytecode.Wide {
			op = in.WideOp
		}
		vm.st(opProbes[byte(op)])

		// jump transfers control to a byte pc.
		jumpTo := -1
		var thrown *javaThrow

		switch op {
		case bytecode.Nop, bytecode.Breakpoint:
		case bytecode.AconstNull:
			stackPush(&stack, nullVal())
		case bytecode.IconstM1, bytecode.Iconst0, bytecode.Iconst1, bytecode.Iconst2,
			bytecode.Iconst3, bytecode.Iconst4, bytecode.Iconst5:
			stackPush(&stack, intVal(int64(op) - int64(bytecode.Iconst0)))
		case bytecode.Lconst0, bytecode.Lconst1:
			stackPush(&stack, longVal(int64(op - bytecode.Lconst0)))
		case bytecode.Fconst0, bytecode.Fconst1, bytecode.Fconst2:
			stackPush(&stack, floatVal(float64(op - bytecode.Fconst0)))
		case bytecode.Dconst0, bytecode.Dconst1:
			stackPush(&stack, doubleVal(float64(op - bytecode.Dconst0)))
		case bytecode.Bipush, bytecode.Sipush:
			stackPush(&stack, intVal(int64(in.Imm)))
		case bytecode.Ldc, bytecode.LdcW, bytecode.Ldc2W:
			c := ex.f.Pool.Get(in.CPIndex)
			if c == nil {
				thrown = throwf(dot2slash(ErrClassFormat), "ldc of invalid constant")
				break
			}
			switch c.Tag {
			case classfile.TagInteger:
				stackPush(&stack, intVal(int64(c.Int)))
			case classfile.TagFloat:
				stackPush(&stack, floatVal(float64(c.Float)))
			case classfile.TagLong:
				stackPush(&stack, longVal(c.Long))
			case classfile.TagDouble:
				stackPush(&stack, doubleVal(c.Double))
			case classfile.TagString:
				s, _ := ex.f.Pool.Utf8(c.Ref1)
				stackPush(&stack, refVal(stringObj(s)))
			case classfile.TagClass:
				n, _ := ex.f.Pool.Utf8(c.Ref1)
				stackPush(&stack, refVal(&object{class: "java/lang/Class", str: n}))
			default:
				thrown = throwf(dot2slash(ErrClassFormat), "ldc of unsupported tag")
			}

		case bytecode.Iload, bytecode.Lload, bytecode.Fload, bytecode.Dload, bytecode.Aload:
			stackPush(&stack, locals[in.Local])
		case bytecode.Iload0, bytecode.Iload1, bytecode.Iload2, bytecode.Iload3:
			stackPush(&stack, locals[op-bytecode.Iload0])
		case bytecode.Lload0, bytecode.Lload1, bytecode.Lload2, bytecode.Lload3:
			stackPush(&stack, locals[op-bytecode.Lload0])
		case bytecode.Fload0, bytecode.Fload1, bytecode.Fload2, bytecode.Fload3:
			stackPush(&stack, locals[op-bytecode.Fload0])
		case bytecode.Dload0, bytecode.Dload1, bytecode.Dload2, bytecode.Dload3:
			stackPush(&stack, locals[op-bytecode.Dload0])
		case bytecode.Aload0, bytecode.Aload1, bytecode.Aload2, bytecode.Aload3:
			stackPush(&stack, locals[op-bytecode.Aload0])

		case bytecode.Istore, bytecode.Lstore, bytecode.Fstore, bytecode.Dstore, bytecode.Astore:
			locals[in.Local] = pop()
		case bytecode.Istore0, bytecode.Istore1, bytecode.Istore2, bytecode.Istore3:
			locals[op-bytecode.Istore0] = pop()
		case bytecode.Lstore0, bytecode.Lstore1, bytecode.Lstore2, bytecode.Lstore3:
			locals[op-bytecode.Lstore0] = pop()
		case bytecode.Fstore0, bytecode.Fstore1, bytecode.Fstore2, bytecode.Fstore3:
			locals[op-bytecode.Fstore0] = pop()
		case bytecode.Dstore0, bytecode.Dstore1, bytecode.Dstore2, bytecode.Dstore3:
			locals[op-bytecode.Dstore0] = pop()
		case bytecode.Astore0, bytecode.Astore1, bytecode.Astore2, bytecode.Astore3:
			locals[op-bytecode.Astore0] = pop()

		case bytecode.Iaload, bytecode.Laload, bytecode.Faload, bytecode.Daload,
			bytecode.Aaload, bytecode.Baload, bytecode.Caload, bytecode.Saload:
			i := pop()
			arr := pop()
			if arr.ref == nil {
				thrown = throwf("java/lang/NullPointerException", "array load")
				break
			}
			if i.i < 0 || int(i.i) >= len(arr.ref.arr) {
				thrown = throwf("java/lang/ArrayIndexOutOfBoundsException", "%d", i.i)
				break
			}
			stackPush(&stack, arr.ref.arr[i.i])
		case bytecode.Iastore, bytecode.Lastore, bytecode.Fastore, bytecode.Dastore,
			bytecode.Aastore, bytecode.Bastore, bytecode.Castore, bytecode.Sastore:
			v := pop()
			i := pop()
			arr := pop()
			if arr.ref == nil {
				thrown = throwf("java/lang/NullPointerException", "array store")
				break
			}
			if i.i < 0 || int(i.i) >= len(arr.ref.arr) {
				thrown = throwf("java/lang/ArrayIndexOutOfBoundsException", "%d", i.i)
				break
			}
			arr.ref.arr[i.i] = v

		case bytecode.Pop:
			pop()
		case bytecode.Pop2:
			v := pop()
			if v.kind != 'J' && v.kind != 'D' {
				pop()
			}
		case bytecode.Dup:
			v := pop()
			stackPush(&stack, v)
			stackPush(&stack, v)
		case bytecode.DupX1:
			a, b := pop(), pop()
			stackPush(&stack, a)
			stackPush(&stack, b)
			stackPush(&stack, a)
		case bytecode.DupX2:
			a, b, c := pop(), pop(), pop()
			stackPush(&stack, a)
			stackPush(&stack, c)
			stackPush(&stack, b)
			stackPush(&stack, a)
		case bytecode.Dup2:
			a := pop()
			if a.kind == 'J' || a.kind == 'D' {
				stackPush(&stack, a)
				stackPush(&stack, a)
			} else {
				b := pop()
				stackPush(&stack, b)
				stackPush(&stack, a)
				stackPush(&stack, b)
				stackPush(&stack, a)
			}
		case bytecode.Dup2X1, bytecode.Dup2X2:
			a, b, c := pop(), pop(), pop()
			stackPush(&stack, b)
			stackPush(&stack, a)
			stackPush(&stack, c)
			stackPush(&stack, b)
			stackPush(&stack, a)
		case bytecode.Swap:
			a, b := pop(), pop()
			stackPush(&stack, a)
			stackPush(&stack, b)

		case bytecode.Iadd, bytecode.Ladd:
			b, a := pop(), pop()
			stackPush(&stack, value{kind: a.kind, i: a.i + b.i})
		case bytecode.Isub, bytecode.Lsub:
			b, a := pop(), pop()
			stackPush(&stack, value{kind: a.kind, i: a.i - b.i})
		case bytecode.Imul, bytecode.Lmul:
			b, a := pop(), pop()
			stackPush(&stack, value{kind: a.kind, i: a.i * b.i})
		case bytecode.Idiv, bytecode.Ldiv:
			b, a := pop(), pop()
			if b.i == 0 {
				thrown = throwf("java/lang/ArithmeticException", "/ by zero")
				break
			}
			stackPush(&stack, value{kind: a.kind, i: a.i / b.i})
		case bytecode.Irem, bytecode.Lrem:
			b, a := pop(), pop()
			if b.i == 0 {
				thrown = throwf("java/lang/ArithmeticException", "/ by zero")
				break
			}
			stackPush(&stack, value{kind: a.kind, i: a.i % b.i})
		case bytecode.Fadd, bytecode.Dadd:
			b, a := pop(), pop()
			stackPush(&stack, value{kind: a.kind, f: a.f + b.f})
		case bytecode.Fsub, bytecode.Dsub:
			b, a := pop(), pop()
			stackPush(&stack, value{kind: a.kind, f: a.f - b.f})
		case bytecode.Fmul, bytecode.Dmul:
			b, a := pop(), pop()
			stackPush(&stack, value{kind: a.kind, f: a.f * b.f})
		case bytecode.Fdiv, bytecode.Ddiv:
			b, a := pop(), pop()
			stackPush(&stack, value{kind: a.kind, f: a.f / b.f})
		case bytecode.Frem, bytecode.Drem:
			b, a := pop(), pop()
			stackPush(&stack, value{kind: a.kind, f: fmod(a.f, b.f)})
		case bytecode.Ineg, bytecode.Lneg:
			a := pop()
			stackPush(&stack, value{kind: a.kind, i: -a.i})
		case bytecode.Fneg, bytecode.Dneg:
			a := pop()
			stackPush(&stack, value{kind: a.kind, f: -a.f})
		case bytecode.Ishl:
			b, a := pop(), pop()
			stackPush(&stack, intVal(int64(int32(a.i) << (uint(b.i) & 31))))
		case bytecode.Ishr:
			b, a := pop(), pop()
			stackPush(&stack, intVal(int64(int32(a.i) >> (uint(b.i) & 31))))
		case bytecode.Iushr:
			b, a := pop(), pop()
			stackPush(&stack, intVal(int64(int32(uint32(a.i) >> (uint(b.i) & 31)))))
		case bytecode.Lshl:
			b, a := pop(), pop()
			stackPush(&stack, longVal(a.i << (uint(b.i) & 63)))
		case bytecode.Lshr:
			b, a := pop(), pop()
			stackPush(&stack, longVal(a.i >> (uint(b.i) & 63)))
		case bytecode.Lushr:
			b, a := pop(), pop()
			stackPush(&stack, longVal(int64(uint64(a.i) >> (uint(b.i) & 63))))
		case bytecode.Iand, bytecode.Land:
			b, a := pop(), pop()
			stackPush(&stack, value{kind: a.kind, i: a.i & b.i})
		case bytecode.Ior, bytecode.Lor:
			b, a := pop(), pop()
			stackPush(&stack, value{kind: a.kind, i: a.i | b.i})
		case bytecode.Ixor, bytecode.Lxor:
			b, a := pop(), pop()
			stackPush(&stack, value{kind: a.kind, i: a.i ^ b.i})
		case bytecode.Iinc:
			locals[in.Local] = intVal(locals[in.Local].i + int64(in.Imm))

		case bytecode.I2l:
			stackPush(&stack, longVal(pop().i))
		case bytecode.I2f, bytecode.I2d:
			a := pop()
			k := byte('F')
			if op == bytecode.I2d {
				k = 'D'
			}
			stackPush(&stack, value{kind: k, f: float64(a.i)})
		case bytecode.L2i:
			stackPush(&stack, intVal(int64(int32(pop().i))))
		case bytecode.L2f, bytecode.L2d:
			a := pop()
			k := byte('F')
			if op == bytecode.L2d {
				k = 'D'
			}
			stackPush(&stack, value{kind: k, f: float64(a.i)})
		case bytecode.F2i, bytecode.D2i:
			stackPush(&stack, intVal(int64(int32(pop().f))))
		case bytecode.F2l, bytecode.D2l:
			stackPush(&stack, longVal(int64(pop().f)))
		case bytecode.F2d:
			stackPush(&stack, doubleVal(pop().f))
		case bytecode.D2f:
			stackPush(&stack, floatVal(pop().f))
		case bytecode.I2b:
			stackPush(&stack, intVal(int64(int8(pop().i))))
		case bytecode.I2c:
			stackPush(&stack, intVal(int64(uint16(pop().i))))
		case bytecode.I2s:
			stackPush(&stack, intVal(int64(int16(pop().i))))

		case bytecode.Lcmp:
			b, a := pop(), pop()
			stackPush(&stack, intVal(int64(cmpInt(a.i, b.i))))
		case bytecode.Fcmpl, bytecode.Fcmpg, bytecode.Dcmpl, bytecode.Dcmpg:
			b, a := pop(), pop()
			stackPush(&stack, intVal(int64(cmpFloat(a.f, b.f))))

		case bytecode.Ifeq, bytecode.Ifne, bytecode.Iflt, bytecode.Ifge, bytecode.Ifgt, bytecode.Ifle:
			v := pop().i
			take := false
			switch op {
			case bytecode.Ifeq:
				take = v == 0
			case bytecode.Ifne:
				take = v != 0
			case bytecode.Iflt:
				take = v < 0
			case bytecode.Ifge:
				take = v >= 0
			case bytecode.Ifgt:
				take = v > 0
			case bytecode.Ifle:
				take = v <= 0
			}
			if take {
				jumpTo = in.PC + int(in.Branch)
			}
		case bytecode.IfIcmpeq, bytecode.IfIcmpne, bytecode.IfIcmplt, bytecode.IfIcmpge,
			bytecode.IfIcmpgt, bytecode.IfIcmple:
			b, a := pop().i, pop().i
			take := false
			switch op {
			case bytecode.IfIcmpeq:
				take = a == b
			case bytecode.IfIcmpne:
				take = a != b
			case bytecode.IfIcmplt:
				take = a < b
			case bytecode.IfIcmpge:
				take = a >= b
			case bytecode.IfIcmpgt:
				take = a > b
			case bytecode.IfIcmple:
				take = a <= b
			}
			if take {
				jumpTo = in.PC + int(in.Branch)
			}
		case bytecode.IfAcmpeq, bytecode.IfAcmpne:
			b, a := pop(), pop()
			eq := a.ref == b.ref
			if (op == bytecode.IfAcmpeq) == eq {
				jumpTo = in.PC + int(in.Branch)
			}
		case bytecode.Ifnull:
			if pop().ref == nil {
				jumpTo = in.PC + int(in.Branch)
			}
		case bytecode.Ifnonnull:
			if pop().ref != nil {
				jumpTo = in.PC + int(in.Branch)
			}
		case bytecode.Goto, bytecode.GotoW:
			jumpTo = in.PC + int(in.Branch)
		case bytecode.Jsr, bytecode.JsrW:
			// Old-style subroutine call: push the return address (the pc
			// after this instruction) and jump. Only lazily-verifying VMs
			// reach this in version-51 files (ForbidJsrRet gates the rest).
			stackPush(&stack, value{kind: 'R', i: int64(in.PC + in.Size())})
			jumpTo = in.PC + int(in.Branch)
		case bytecode.Ret:
			ra := locals[in.Local]
			if ra.kind != 'R' {
				thrown = throwf(dot2slash(ErrVerify), "ret through a non-returnAddress local")
				break
			}
			jumpTo = int(ra.i)
		case bytecode.Tableswitch:
			v := pop().i
			if v >= int64(in.SwitchLow) && v <= int64(in.SwitchHigh) {
				jumpTo = in.PC + int(in.SwitchOffsets[v-int64(in.SwitchLow)])
			} else {
				jumpTo = in.PC + int(in.SwitchDefault)
			}
		case bytecode.Lookupswitch:
			v := pop().i
			jumpTo = in.PC + int(in.SwitchDefault)
			for i, k := range in.SwitchKeys {
				if int64(k) == v {
					jumpTo = in.PC + int(in.SwitchOffsets[i])
					break
				}
			}

		case bytecode.Ireturn, bytecode.Lreturn, bytecode.Freturn, bytecode.Dreturn, bytecode.Areturn:
			return pop(), nil
		case bytecode.Return:
			return value{}, nil

		case bytecode.Getstatic, bytecode.Putstatic, bytecode.Getfield, bytecode.Putfield:
			thrown = ex.interpField(op, in, &stack)
		case bytecode.Invokevirtual, bytecode.Invokespecial, bytecode.Invokestatic, bytecode.Invokeinterface:
			thrown = ex.interpInvoke(op, in, &stack)
		case bytecode.Invokedynamic:
			thrown = throwf("java/lang/BootstrapMethodError", "invokedynamic is not supported by this simulator")

		case bytecode.New:
			cname, ok := ex.f.Pool.ClassName(in.CPIndex)
			if !ok {
				thrown = throwf(dot2slash(ErrClassFormat), "new of invalid constant")
				break
			}
			if jt := ex.checkInstantiable(cname); jt != nil {
				thrown = jt
				break
			}
			stackPush(&stack, refVal(&object{class: cname, fields: map[string]value{}}))
		case bytecode.Newarray:
			n := pop().i
			if n < 0 {
				thrown = throwf("java/lang/NegativeArraySizeException", "%d", n)
				break
			}
			o := &object{class: "[" + in.ArrayTyp.Descriptor(), elem: in.ArrayTyp.Descriptor(), arr: make([]value, n)}
			for i := range o.arr {
				o.arr[i] = zeroOf(o.elem)
			}
			stackPush(&stack, refVal(o))
		case bytecode.Anewarray:
			cname, _ := ex.f.Pool.ClassName(in.CPIndex)
			n := pop().i
			if n < 0 {
				thrown = throwf("java/lang/NegativeArraySizeException", "%d", n)
				break
			}
			o := &object{class: "[L" + cname + ";", elem: "L" + cname + ";", arr: make([]value, n)}
			for i := range o.arr {
				o.arr[i] = nullVal()
			}
			stackPush(&stack, refVal(o))
		case bytecode.Multianewarray:
			for i := 0; i < int(in.Count); i++ {
				pop()
			}
			cname, _ := ex.f.Pool.ClassName(in.CPIndex)
			stackPush(&stack, refVal(&object{class: cname, arr: []value{}}))
		case bytecode.Arraylength:
			a := pop()
			if a.ref == nil {
				thrown = throwf("java/lang/NullPointerException", "arraylength")
				break
			}
			stackPush(&stack, intVal(int64(len(a.ref.arr))))

		case bytecode.Athrow:
			v := pop()
			if v.ref == nil {
				thrown = throwf("java/lang/NullPointerException", "athrow of null")
			} else {
				thrown = &javaThrow{class: v.ref.class, msg: v.ref.str}
			}
		case bytecode.Checkcast:
			cname, _ := ex.f.Pool.ClassName(in.CPIndex)
			v := pop()
			if v.ref != nil {
				ok, jt := ex.runtimeInstanceOf(v.ref.class, cname)
				if jt != nil {
					thrown = jt
					break
				}
				if !ok {
					thrown = throwf("java/lang/ClassCastException", "%s cannot be cast to %s", v.ref.class, cname)
					break
				}
			}
			stackPush(&stack, v)
		case bytecode.Instanceof:
			cname, _ := ex.f.Pool.ClassName(in.CPIndex)
			v := pop()
			res := int64(0)
			if v.ref != nil {
				ok, jt := ex.runtimeInstanceOf(v.ref.class, cname)
				if jt != nil {
					thrown = jt
					break
				}
				if ok {
					res = 1
				}
			}
			stackPush(&stack, intVal(res))
		case bytecode.Monitorenter, bytecode.Monitorexit:
			if pop().ref == nil {
				thrown = throwf("java/lang/NullPointerException", "monitor on null")
			}

		default:
			thrown = throwf(dot2slash(ErrInternal), "unsupported opcode %s at pc %d", op.Mnemonic(), in.PC)
		}

		if thrown != nil {
			if thrown.class == "budget" {
				return value{}, thrown
			}
			// Search this method's exception table.
			handled := false
			for _, h := range code.Handlers {
				if in.PC < int(h.StartPC) || in.PC >= int(h.EndPC) {
					continue
				}
				catch := ""
				if h.CatchType != 0 {
					catch, _ = ex.f.Pool.ClassName(h.CatchType)
				}
				if catch == "" || ex.throwMatches(thrown.class, catch) {
					hidx, ok := pcIndex[int(h.HandlerPC)]
					if !ok {
						continue
					}
					stack = stack[:0]
					stackPush(&stack, refVal(&object{class: thrown.class, str: thrown.msg}))
					idx = hidx
					handled = true
					vm.st(pInterpHandler)
					break
				}
			}
			if handled {
				continue
			}
			return value{}, thrown
		}

		if jumpTo >= 0 {
			ni, ok := pcIndex[jumpTo]
			if !ok {
				return value{}, throwf(dot2slash(ErrVerify), "branch to invalid pc %d", jumpTo)
			}
			idx = ni
		} else {
			idx++
			if idx >= len(ins) {
				return value{}, throwf(dot2slash(ErrVerify), "fell off the end of the code")
			}
		}
	}
}

func fmod(a, b float64) float64 {
	if b == 0 {
		return a / b // NaN, like Java
	}
	return a - b*float64(int64(a/b))
}

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// throwMatches reports whether a thrown class is caught by a handler's
// catch type, using the environment hierarchy (self-thrown classes
// match exactly or via the declared superclass).
func (ex *execState) throwMatches(thrown, catch string) bool {
	if thrown == catch {
		return true
	}
	if thrown == ex.name {
		return ex.vm.Env.IsSubclassOf(ex.f.SuperName(), catch)
	}
	return ex.vm.Env.IsSubclassOf(thrown, catch)
}

// runtimeInstanceOf resolves an instanceof/checkcast target lazily; a
// missing class surfaces as NoClassDefFoundError at runtime (the GIJ
// channel).
func (ex *execState) runtimeInstanceOf(from, to string) (bool, *javaThrow) {
	if to == ex.name {
		return from == ex.name, nil
	}
	if from == ex.name {
		if ex.vm.Env.AssignableTo(ex.f.SuperName(), to) {
			return true, nil
		}
		for _, n := range ex.f.InterfaceNames() {
			if n == to || ex.vm.Env.AssignableTo(n, to) {
				return true, nil
			}
		}
		return false, nil
	}
	if _, ok := ex.vm.Env.Lookup(to); !ok {
		return false, throwf(dot2slash(ErrNoClassDef), "%s", to)
	}
	return ex.vm.Env.AssignableTo(from, to), nil
}

// checkInstantiable guards `new`: interfaces and abstract classes throw
// InstantiationError; a missing class throws NoClassDefFoundError.
func (ex *execState) checkInstantiable(cname string) *javaThrow {
	if cname == ex.name {
		if ex.f.IsInterface() || ex.f.AccessFlags.Has(classfile.AccAbstract) {
			return throwf(dot2slash(ErrInstantiation), "%s", cname)
		}
		return nil
	}
	ci, ok := ex.vm.Env.Lookup(cname)
	if !ok {
		return throwf(dot2slash(ErrNoClassDef), "%s", cname)
	}
	if ci.Interface || ci.Abstract {
		return throwf(dot2slash(ErrInstantiation), "%s", cname)
	}
	if ex.vm.Spec.Policy.CheckResolvedAccess && !ci.Accessible {
		return throwf(dot2slash(ErrIllegalAccess), "%s", cname)
	}
	return nil
}

// interpField executes the four field-access opcodes.
func (ex *execState) interpField(op bytecode.Opcode, in *bytecode.Instruction, stack *[]value) *javaThrow {
	cls, name, desc, ok := ex.f.Pool.MemberRef(in.CPIndex)
	if !ok {
		return throwf(dot2slash(ErrClassFormat), "field access through invalid constant")
	}

	// Lazy resolution failure channel.
	if !ex.vm.Spec.Policy.EagerResolution {
		kind, _ := ex.resolveClass(cls)
		if kind == kindMissing {
			return throwf(dot2slash(ErrNoClassDef), "%s", cls)
		}
		if !ex.fieldExists(cls, name, desc) {
			return throwf(dot2slash(ErrNoSuchField), "%s.%s", cls, name)
		}
	}

	// System.out / System.err are the interesting platform statics.
	switch op {
	case bytecode.Getstatic:
		if cls == "java/lang/System" && (name == "out" || name == "err") {
			stackPush(stack, refVal(&object{class: "java/io/PrintStream", str: name}))
			return nil
		}
		if v, ok := ex.statics[cls+"."+name+":"+desc]; ok {
			stackPush(stack, v)
		} else {
			stackPush(stack, zeroOf(desc))
		}
	case bytecode.Putstatic:
		ex.statics[cls+"."+name+":"+desc] = stackPop(stack)
	case bytecode.Getfield:
		recv := stackPop(stack)
		if recv.ref == nil {
			return throwf("java/lang/NullPointerException", "getfield %s", name)
		}
		if recv.ref.fields == nil {
			recv.ref.fields = map[string]value{}
		}
		if v, ok := recv.ref.fields[name+":"+desc]; ok {
			stackPush(stack, v)
		} else {
			stackPush(stack, zeroOf(desc))
		}
	case bytecode.Putfield:
		v := stackPop(stack)
		recv := stackPop(stack)
		if recv.ref == nil {
			return throwf("java/lang/NullPointerException", "putfield %s", name)
		}
		if recv.ref.fields == nil {
			recv.ref.fields = map[string]value{}
		}
		recv.ref.fields[name+":"+desc] = v
	}
	return nil
}

// stackPop pops the operand stack (empty pops yield the zero value —
// the verifier is the arbiter of underflow).
func stackPop(stack *[]value) value {
	s := *stack
	if len(s) == 0 {
		return value{}
	}
	v := s[len(s)-1]
	*stack = s[:len(s)-1]
	return v
}

// stackPush pushes onto the operand stack.
func stackPush(stack *[]value, v value) { *stack = append(*stack, v) }

// interpInvoke executes the invoke opcodes: platform intrinsics get
// hand-written semantics; methods of the class under test recurse into
// the interpreter.
func (ex *execState) interpInvoke(op bytecode.Opcode, in *bytecode.Instruction, stack *[]value) *javaThrow {
	cls, name, desc, ok := ex.f.Pool.MemberRef(in.CPIndex)
	if !ok {
		return throwf(dot2slash(ErrClassFormat), "invoke through invalid constant")
	}
	md, err := descriptor.ParseMethod(desc)
	if err != nil {
		return throwf(dot2slash(ErrClassFormat), "invoked descriptor %q malformed", desc)
	}

	s := *stack
	nargs := len(md.Params)
	static := op == bytecode.Invokestatic
	total := nargs
	if !static {
		total++
	}
	if len(s) < total {
		return throwf(dot2slash(ErrVerify), "operand stack underflow at invoke")
	}
	args := append([]value(nil), s[len(s)-total:]...)
	*stack = s[:len(s)-total]

	// Lazy resolution (GIJ): failures surface here, at runtime.
	if !ex.vm.Spec.Policy.EagerResolution {
		kind, _ := ex.resolveClass(cls)
		if kind == kindMissing {
			return throwf(dot2slash(ErrNoClassDef), "%s", cls)
		}
		if !ex.methodExists(cls, name, desc) {
			return throwf(dot2slash(ErrNoSuchMethod), "%s.%s%s", cls, name, desc)
		}
	}

	// Own methods: interpret recursively.
	if cls == ex.name {
		m := ex.f.FindMethodExact(name, desc)
		if m == nil {
			return throwf(dot2slash(ErrNoSuchMethod), "%s.%s%s", cls, name, desc)
		}
		if m.AccessFlags.Has(classfile.AccAbstract) {
			return throwf(dot2slash(ErrAbstractMethod), "%s.%s", cls, name)
		}
		if m.AccessFlags.Has(classfile.AccNative) {
			return throwf(dot2slash(ErrUnsatisfiedLink), "%s.%s", cls, name)
		}
		ret, jt := ex.callMethod(m, args)
		if jt != nil {
			return jt
		}
		if !md.Return.IsVoid() {
			stackPush(stack, ret)
		}
		return nil
	}

	// Platform semantics.
	ret, jt, handled := ex.platformInvoke(cls, name, desc, md, args)
	if jt != nil {
		return jt
	}
	if handled {
		if !md.Return.IsVoid() {
			stackPush(stack, ret)
		}
		return nil
	}
	// Known platform method without bespoke semantics: return the
	// default value of the return type (a benign stub).
	if !md.Return.IsVoid() {
		stackPush(stack, zeroOf(md.Return.String()))
	}
	return nil
}

// platformInvoke implements the platform intrinsics the generated
// classes use. handled=false means the method resolved but has no
// bespoke semantics.
func (ex *execState) platformInvoke(cls, name, desc string, md descriptor.Method, args []value) (value, *javaThrow, bool) {
	ex.vm.stPlatform(cls, name)
	recvStr := func() string {
		if len(args) > 0 && args[0].ref != nil {
			return args[0].ref.str
		}
		return ""
	}
	switch cls {
	case "java/io/PrintStream":
		if name == "println" || name == "print" {
			if len(args) == 0 || args[0].ref == nil {
				return value{}, throwf("java/lang/NullPointerException", "println on null stream"), false
			}
			line := formatValue(args[1:])
			ex.output = append(ex.output, line)
			return value{}, nil, true
		}
	case "java/lang/String":
		switch name {
		case "length":
			return intVal(int64(len(recvStr()))), nil, true
		case "charAt":
			s := recvStr()
			i := args[1].i
			if i < 0 || int(i) >= len(s) {
				return value{}, throwf("java/lang/StringIndexOutOfBoundsException", "%d", i), false
			}
			return intVal(int64(s[i])), nil, true
		case "concat":
			other := ""
			if args[1].ref != nil {
				other = args[1].ref.str
			}
			return refVal(stringObj(recvStr() + other)), nil, true
		case "valueOf":
			return refVal(stringObj(strconv.FormatInt(args[0].i, 10))), nil, true
		case "equals":
			eq := int64(0)
			if args[1].ref != nil && args[1].ref.class == "java/lang/String" && args[1].ref.str == recvStr() {
				eq = 1
			}
			return intVal(eq), nil, true
		}
	case "java/lang/StringBuilder":
		switch name {
		case "<init>":
			if args[0].ref != nil {
				args[0].ref.sb = &strings.Builder{}
			}
			return value{}, nil, true
		case "append":
			if args[0].ref != nil && args[0].ref.sb != nil {
				if args[1].kind == 'A' {
					if args[1].ref != nil {
						args[0].ref.sb.WriteString(args[1].ref.str)
					} else {
						args[0].ref.sb.WriteString("null")
					}
				} else {
					args[0].ref.sb.WriteString(strconv.FormatInt(args[1].i, 10))
				}
			}
			return args[0], nil, true
		case "toString":
			if args[0].ref != nil && args[0].ref.sb != nil {
				return refVal(stringObj(args[0].ref.sb.String())), nil, true
			}
			return refVal(stringObj("")), nil, true
		}
	case "java/lang/Integer":
		switch name {
		case "valueOf":
			o := &object{class: "java/lang/Integer", fields: map[string]value{"value:I": args[0]}}
			return refVal(o), nil, true
		case "intValue":
			if args[0].ref != nil {
				return args[0].ref.fields["value:I"], nil, true
			}
			return value{}, throwf("java/lang/NullPointerException", "intValue"), false
		case "parseInt":
			n, err := strconv.ParseInt(recvStr(), 10, 32)
			_ = err
			return intVal(n), nil, true
		}
	case "java/lang/Math":
		switch name {
		case "abs":
			v := args[0].i
			if v < 0 {
				v = -v
			}
			return intVal(v), nil, true
		case "max":
			return intVal(max(args[0].i, args[1].i)), nil, true
		case "min":
			return intVal(min(args[0].i, args[1].i)), nil, true
		}
	case "java/lang/System":
		if name == "exit" {
			return value{}, &javaThrow{class: "budget", msg: "System.exit"}, false
		}
		if name == "currentTimeMillis" {
			return longVal(0), nil, true // deterministic simulation clock
		}
	case "java/lang/Object":
		switch name {
		case "<init>":
			return value{}, nil, true
		case "hashCode":
			return intVal(1), nil, true
		case "equals":
			eq := int64(0)
			if len(args) == 2 && args[0].ref == args[1].ref {
				eq = 1
			}
			return intVal(eq), nil, true
		case "toString":
			c := "null"
			if args[0].ref != nil {
				c = args[0].ref.class
			}
			return refVal(stringObj(c + "@1")), nil, true
		case "getClass":
			c := ""
			if args[0].ref != nil {
				c = args[0].ref.class
			}
			return refVal(&object{class: "java/lang/Class", str: c}), nil, true
		case "getBoolean":
			return intVal(0), nil, true
		}
	case "java/util/ArrayList":
		switch name {
		case "<init>":
			if args[0].ref != nil {
				args[0].ref.arr = []value{}
			}
			return value{}, nil, true
		case "add":
			if args[0].ref == nil {
				return value{}, throwf("java/lang/NullPointerException", "add"), false
			}
			args[0].ref.arr = append(args[0].ref.arr, args[1])
			return intVal(1), nil, true
		case "size":
			if args[0].ref == nil {
				return value{}, throwf("java/lang/NullPointerException", "size"), false
			}
			return intVal(int64(len(args[0].ref.arr))), nil, true
		case "get":
			if args[0].ref == nil {
				return value{}, throwf("java/lang/NullPointerException", "get"), false
			}
			i := args[1].i
			if i < 0 || int(i) >= len(args[0].ref.arr) {
				return value{}, throwf("java/lang/IndexOutOfBoundsException", "%d", i), false
			}
			return args[0].ref.arr[i], nil, true
		}
	case "java/util/HashMap":
		switch name {
		case "<init>":
			if args[0].ref != nil && args[0].ref.fields == nil {
				args[0].ref.fields = map[string]value{}
			}
			return value{}, nil, true
		case "put":
			if args[0].ref == nil {
				return value{}, throwf("java/lang/NullPointerException", "put"), false
			}
			k := "null"
			if args[1].ref != nil {
				k = args[1].ref.str
			}
			if args[0].ref.fields == nil {
				args[0].ref.fields = map[string]value{}
			}
			old, had := args[0].ref.fields[k]
			args[0].ref.fields[k] = args[2]
			if had {
				return old, nil, true
			}
			return nullVal(), nil, true
		case "get":
			if args[0].ref == nil {
				return value{}, throwf("java/lang/NullPointerException", "get"), false
			}
			k := "null"
			if args[1].ref != nil {
				k = args[1].ref.str
			}
			if v, ok := args[0].ref.fields[k]; ok {
				return v, nil, true
			}
			return nullVal(), nil, true
		}
	case "java/lang/Thread":
		switch name {
		case "<init>", "start", "run":
			return value{}, nil, true // threads are inert in the simulation
		}
	}
	// Throwable family constructors record the message for athrow.
	if ex.vm.Env.IsThrowable(cls) {
		switch name {
		case "<init>":
			if args[0].ref != nil && len(args) > 1 && args[1].ref != nil {
				args[0].ref.str = args[1].ref.str
			}
			return value{}, nil, true
		case "getMessage":
			if args[0].ref != nil {
				return refVal(stringObj(args[0].ref.str)), nil, true
			}
		}
	}
	return value{}, nil, false
}

// formatValue renders println arguments.
func formatValue(args []value) string {
	if len(args) == 0 {
		return ""
	}
	a := args[0]
	switch a.kind {
	case 'A':
		if a.ref == nil {
			return "null"
		}
		if a.ref.class == "java/lang/String" {
			return a.ref.str
		}
		return a.ref.class + "@1"
	case 'F', 'D':
		return strconv.FormatFloat(a.f, 'g', -1, 64)
	case 'I':
		if a.i == 0 || a.i == 1 {
			// May be a boolean; int rendering is identical enough for the
			// simulation's output-comparison purposes.
		}
		return strconv.FormatInt(a.i, 10)
	default:
		return strconv.FormatInt(a.i, 10)
	}
}
