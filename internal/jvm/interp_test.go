package jvm

import (
	"testing"

	"repro/internal/bytecode"
	"repro/internal/classfile"
)

// runMain builds a class whose main is the given code and executes it
// on HotSpot 8, printing through System.out where the body says so.
func runMain(t *testing.T, build func(cb *classfile.CodeBuilder), maxStack, maxLocals uint16) Outcome {
	t.Helper()
	f := classfile.New("IMain")
	classfile.AttachDefaultInit(f)
	m := f.AddMethod(classfile.AccPublic|classfile.AccStatic, "main", "([Ljava/lang/String;)V")
	cb := classfile.NewCodeBuilder(f.Pool)
	build(cb)
	cb.SetMaxStack(maxStack).SetMaxLocals(maxLocals)
	m.Attributes = append(m.Attributes, cb.Build())
	data, err := f.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	return New(HotSpot8()).Run(data)
}

// printInt emits code printing the int on top of the stack via
// String.valueOf + println.
func printInt(cb *classfile.CodeBuilder) {
	cb.Invokestatic("java/lang/String", "valueOf", "(I)Ljava/lang/String;")
	cb.Op(bytecode.Astore2)
	cb.Getstatic("java/lang/System", "out", "Ljava/io/PrintStream;")
	cb.Op(bytecode.Aload2)
	cb.Invokevirtual("java/io/PrintStream", "println", "(Ljava/lang/String;)V")
}

func wantOutput(t *testing.T, o Outcome, lines ...string) {
	t.Helper()
	if !o.OK() {
		t.Fatalf("run failed: %s", o)
	}
	if len(o.Output) != len(lines) {
		t.Fatalf("output %v, want %v", o.Output, lines)
	}
	for i := range lines {
		if o.Output[i] != lines[i] {
			t.Errorf("line %d = %q, want %q", i, o.Output[i], lines[i])
		}
	}
}

func TestInterpIntArithmetic(t *testing.T) {
	cases := []struct {
		op   bytecode.Opcode
		a, b int32
		want string
	}{
		{bytecode.Iadd, 30, 12, "42"},
		{bytecode.Isub, 50, 8, "42"},
		{bytecode.Imul, 6, 7, "42"},
		{bytecode.Idiv, 85, 2, "42"},
		{bytecode.Irem, 100, 58, "42"},
		{bytecode.Iand, 0xFF, 0x2A, "42"},
		{bytecode.Ior, 0x28, 0x02, "42"},
		{bytecode.Ixor, 0x6A, 0x40, "42"},
		{bytecode.Ishl, 21, 1, "42"},
		{bytecode.Ishr, 84, 1, "42"},
		{bytecode.Iushr, 84, 1, "42"},
	}
	for _, c := range cases {
		o := runMain(t, func(cb *classfile.CodeBuilder) {
			cb.LdcInt(c.a).LdcInt(c.b).Op(c.op)
			printInt(cb)
			cb.Op(bytecode.Return)
		}, 4, 4)
		wantOutput(t, o, c.want)
	}
}

func TestInterpNegationAndConversions(t *testing.T) {
	o := runMain(t, func(cb *classfile.CodeBuilder) {
		cb.LdcInt(-42).Op(bytecode.Ineg)
		printInt(cb)
		cb.Op(bytecode.Return)
	}, 4, 4)
	wantOutput(t, o, "42")

	// int -> long -> int round trip with truncation semantics.
	o = runMain(t, func(cb *classfile.CodeBuilder) {
		cb.LdcInt(42).Op(bytecode.I2l).Op(bytecode.L2i)
		printInt(cb)
		cb.Op(bytecode.Return)
	}, 4, 4)
	wantOutput(t, o, "42")

	// i2b sign extension: 200 -> -56.
	o = runMain(t, func(cb *classfile.CodeBuilder) {
		cb.LdcInt(200).Op(bytecode.I2b)
		printInt(cb)
		cb.Op(bytecode.Return)
	}, 4, 4)
	wantOutput(t, o, "-56")
}

func TestInterpDivByZero(t *testing.T) {
	o := runMain(t, func(cb *classfile.CodeBuilder) {
		cb.LdcInt(1).LdcInt(0).Op(bytecode.Idiv).Op(bytecode.Pop).Op(bytecode.Return)
	}, 4, 2)
	if o.Phase != PhaseRuntime || o.Error != ExcArithmetic {
		t.Errorf("want ArithmeticException, got %s", o)
	}
	o = runMain(t, func(cb *classfile.CodeBuilder) {
		cb.Op(bytecode.Lconst1).Op(bytecode.Lconst0).Op(bytecode.Lrem).Op(bytecode.Pop2).Op(bytecode.Return)
	}, 6, 2)
	if o.Error != ExcArithmetic {
		t.Errorf("want ArithmeticException for lrem, got %s", o)
	}
}

func TestInterpLongComparison(t *testing.T) {
	// lcmp of 2^40 vs 1 -> 1, printed.
	f := classfile.New("ILong")
	classfile.AttachDefaultInit(f)
	m := f.AddMethod(classfile.AccPublic|classfile.AccStatic, "main", "([Ljava/lang/String;)V")
	cb := classfile.NewCodeBuilder(f.Pool)
	cb.U2(bytecode.Ldc2W, f.Pool.AddLong(1<<40))
	cb.Op(bytecode.Lconst1)
	cb.Op(bytecode.Lcmp)
	printInt(cb)
	cb.Op(bytecode.Return)
	cb.SetMaxStack(6).SetMaxLocals(4)
	m.Attributes = append(m.Attributes, cb.Build())
	data, _ := f.Bytes()
	o := New(HotSpot8()).Run(data)
	wantOutput(t, o, "1")
}

func TestInterpArrays(t *testing.T) {
	// a = new int[3]; a[1] = 42; print a[1] + a.length
	o := runMain(t, func(cb *classfile.CodeBuilder) {
		cb.LdcInt(3).U1(bytecode.Newarray, byte(bytecode.TInt)).Op(bytecode.Astore1)
		cb.Op(bytecode.Aload1).LdcInt(1).LdcInt(42).Op(bytecode.Iastore)
		cb.Op(bytecode.Aload1).LdcInt(1).Op(bytecode.Iaload)
		cb.Op(bytecode.Aload1).Op(bytecode.Arraylength)
		cb.Op(bytecode.Iadd)
		printInt(cb)
		cb.Op(bytecode.Return)
	}, 6, 4)
	wantOutput(t, o, "45")
}

func TestInterpArrayIndexOutOfBounds(t *testing.T) {
	o := runMain(t, func(cb *classfile.CodeBuilder) {
		cb.LdcInt(2).U1(bytecode.Newarray, byte(bytecode.TInt)).Op(bytecode.Astore1)
		cb.Op(bytecode.Aload1).LdcInt(5).Op(bytecode.Iaload)
		cb.Op(bytecode.Pop).Op(bytecode.Return)
	}, 6, 4)
	if o.Error != ExcArrayIndex {
		t.Errorf("want ArrayIndexOutOfBoundsException, got %s", o)
	}
}

func TestInterpNegativeArraySize(t *testing.T) {
	o := runMain(t, func(cb *classfile.CodeBuilder) {
		cb.LdcInt(-1).U1(bytecode.Newarray, byte(bytecode.TInt)).Op(bytecode.Pop).Op(bytecode.Return)
	}, 4, 2)
	if o.Error != ExcNegativeArraySize {
		t.Errorf("want NegativeArraySizeException, got %s", o)
	}
}

func TestInterpStringIntrinsics(t *testing.T) {
	// "foo".concat("bar").length() -> 6
	o := runMain(t, func(cb *classfile.CodeBuilder) {
		cb.Ldc("foo").Ldc("bar").
			Invokevirtual("java/lang/String", "concat", "(Ljava/lang/String;)Ljava/lang/String;").
			Invokevirtual("java/lang/String", "length", "()I")
		printInt(cb)
		cb.Op(bytecode.Return)
	}, 4, 4)
	wantOutput(t, o, "6")
}

func TestInterpStringBuilderChain(t *testing.T) {
	o := runMain(t, func(cb *classfile.CodeBuilder) {
		cb.New("java/lang/StringBuilder").Op(bytecode.Dup).
			Invokespecial("java/lang/StringBuilder", "<init>", "()V").
			Ldc("n=").
			Invokevirtual("java/lang/StringBuilder", "append", "(Ljava/lang/String;)Ljava/lang/StringBuilder;").
			LdcInt(7).
			Invokevirtual("java/lang/StringBuilder", "append", "(I)Ljava/lang/StringBuilder;").
			Invokevirtual("java/lang/StringBuilder", "toString", "()Ljava/lang/String;").
			Op(bytecode.Astore1)
		cb.Getstatic("java/lang/System", "out", "Ljava/io/PrintStream;").
			Op(bytecode.Aload1).
			Invokevirtual("java/io/PrintStream", "println", "(Ljava/lang/String;)V").
			Op(bytecode.Return)
	}, 4, 4)
	wantOutput(t, o, "n=7")
}

func TestInterpInstanceFields(t *testing.T) {
	// An object of the class under test with a field round trip.
	f := classfile.New("IField")
	f.AddField(classfile.AccPrivate, "v", "I")
	classfile.AttachDefaultInit(f)
	m := f.AddMethod(classfile.AccPublic|classfile.AccStatic, "main", "([Ljava/lang/String;)V")
	cb := classfile.NewCodeBuilder(f.Pool)
	cb.New("IField").Op(bytecode.Dup).
		Invokespecial("IField", "<init>", "()V").
		Op(bytecode.Astore1)
	cb.Op(bytecode.Aload1).LdcInt(42).Putfield("IField", "v", "I")
	cb.Op(bytecode.Aload1).Getfield("IField", "v", "I")
	printInt(cb)
	cb.Op(bytecode.Return)
	cb.SetMaxStack(4).SetMaxLocals(4)
	m.Attributes = append(m.Attributes, cb.Build())
	data, _ := f.Bytes()
	o := New(HotSpot8()).Run(data)
	wantOutput(t, o, "42")
}

func TestInterpNullPointerOnField(t *testing.T) {
	f := classfile.New("INull")
	f.AddField(classfile.AccPrivate, "v", "I")
	classfile.AttachDefaultInit(f)
	m := f.AddMethod(classfile.AccPublic|classfile.AccStatic, "main", "([Ljava/lang/String;)V")
	cb := classfile.NewCodeBuilder(f.Pool)
	cb.Op(bytecode.AconstNull).Getfield("INull", "v", "I").Op(bytecode.Pop).Op(bytecode.Return)
	cb.SetMaxStack(2).SetMaxLocals(1)
	m.Attributes = append(m.Attributes, cb.Build())
	data, _ := f.Bytes()
	o := New(HotSpot8()).Run(data)
	if o.Error != ExcNullPointer {
		t.Errorf("want NullPointerException, got %s", o)
	}
}

func TestInterpInstanceofAndCheckcast(t *testing.T) {
	o := runMain(t, func(cb *classfile.CodeBuilder) {
		cb.Ldc("x").U2(bytecode.Instanceof, 0) // patched below via pool
		cb.Op(bytecode.Pop).Op(bytecode.Return)
	}, 4, 2)
	_ = o // the zero-index form fails verification; real cases below

	// instanceof String on a String literal -> 1.
	f := classfile.New("IInst")
	classfile.AttachDefaultInit(f)
	m := f.AddMethod(classfile.AccPublic|classfile.AccStatic, "main", "([Ljava/lang/String;)V")
	cb := classfile.NewCodeBuilder(f.Pool)
	cb.Ldc("x")
	cb.U2(bytecode.Instanceof, f.Pool.AddClass("java/io/Serializable"))
	printInt(cb)
	cb.Op(bytecode.Return)
	cb.SetMaxStack(4).SetMaxLocals(4)
	m.Attributes = append(m.Attributes, cb.Build())
	data, _ := f.Bytes()
	o = New(HotSpot8()).Run(data)
	wantOutput(t, o, "1")

	// checkcast failure: String -> HashMap.
	f2 := classfile.New("ICast")
	classfile.AttachDefaultInit(f2)
	m2 := f2.AddMethod(classfile.AccPublic|classfile.AccStatic, "main", "([Ljava/lang/String;)V")
	cb2 := classfile.NewCodeBuilder(f2.Pool)
	cb2.Ldc("x").Checkcast("java/util/HashMap").Op(bytecode.Pop).Op(bytecode.Return)
	cb2.SetMaxStack(2).SetMaxLocals(1)
	m2.Attributes = append(m2.Attributes, cb2.Build())
	data2, _ := f2.Bytes()
	o2 := New(HotSpot8()).Run(data2)
	if o2.Error != ExcClassCast {
		t.Errorf("want ClassCastException, got %s", o2)
	}
}

func TestInterpRecursionAndStackOverflow(t *testing.T) {
	// A self-recursive method without a base case must hit the depth
	// limit and surface StackOverflowError.
	f := classfile.New("IRec")
	classfile.AttachDefaultInit(f)
	rec := f.AddMethod(classfile.AccPublic|classfile.AccStatic, "rec", "()V")
	rcb := classfile.NewCodeBuilder(f.Pool)
	rcb.Invokestatic("IRec", "rec", "()V").Op(bytecode.Return)
	rcb.SetMaxStack(1).SetMaxLocals(0)
	rec.Attributes = append(rec.Attributes, rcb.Build())
	m := f.AddMethod(classfile.AccPublic|classfile.AccStatic, "main", "([Ljava/lang/String;)V")
	cb := classfile.NewCodeBuilder(f.Pool)
	cb.Invokestatic("IRec", "rec", "()V").Op(bytecode.Return)
	cb.SetMaxStack(1).SetMaxLocals(1)
	m.Attributes = append(m.Attributes, cb.Build())
	data, _ := f.Bytes()
	o := New(HotSpot8()).Run(data)
	if o.Phase != PhaseRuntime || o.Error != "java.lang.StackOverflowError" {
		t.Errorf("want StackOverflowError, got %s", o)
	}
}

func TestInterpTableswitch(t *testing.T) {
	// switch(2): case 1-> 10; case 2 -> 20; default -> 99, via raw code.
	f := classfile.New("ISwitch")
	classfile.AttachDefaultInit(f)
	m := f.AddMethod(classfile.AccPublic|classfile.AccStatic, "main", "([Ljava/lang/String;)V")
	// Hand-assembled: see offsets in comments.
	code := []byte{
		0x05,             // pc0: iconst_2
		0xaa, 0x00, 0x00, // pc1: tableswitch, pad to 4
		0x00, 0x00, 0x00, 0x1f, // default -> pc1+31 = 32
		0x00, 0x00, 0x00, 0x01, // low 1
		0x00, 0x00, 0x00, 0x02, // high 2
		0x00, 0x00, 0x00, 0x1b, // case 1 -> 28
		0x00, 0x00, 0x00, 0x1d, // case 2 -> 30
		0x00, 0x00, 0x00, 0x00, // (padding to reach pc28 cleanly: nops below)
		0x10, 0x0a, // pc28: bipush 10
		0x10, 0x14, // pc30: bipush 20
		0x10, 0x63, // pc32: bipush 99
		0x57, // pc34: pop
		0xb1, // pc35: return
	}
	// The three pushes fall through each other; for this test only the
	// control transfer matters: case 2 jumps to pc30, runs bipush 20,
	// bipush 99, pop, return — stack ends with one extra value, so use
	// pop twice? Simpler: verify execution reaches return without error.
	m.Attributes = append(m.Attributes, &classfile.CodeAttr{MaxStack: 4, MaxLocals: 2, Code: code})
	data, _ := f.Bytes()
	o := New(GIJ()).Run(data) // lazy VM interprets directly
	// Falls through bipush 20, bipush 99, pop, return leaves 1 value on
	// the stack — legal at return. Must terminate normally.
	if o.Phase == PhaseRuntime && o.Error == ErrInternal {
		t.Errorf("tableswitch unsupported: %s", o)
	}
}

func TestInterpCaughtExceptionHierarchy(t *testing.T) {
	// throw ArithmeticException, catch RuntimeException (superclass).
	f := classfile.New("ICatchSuper")
	classfile.AttachDefaultInit(f)
	m := f.AddMethod(classfile.AccPublic|classfile.AccStatic, "main", "([Ljava/lang/String;)V")
	cb := classfile.NewCodeBuilder(f.Pool)
	cb.New("java/lang/ArithmeticException").Op(bytecode.Dup).
		Invokespecial("java/lang/ArithmeticException", "<init>", "()V").
		Op(bytecode.Athrow)
	end := cb.PC()
	h := cb.PC()
	cb.Op(bytecode.Pop)
	cb.Getstatic("java/lang/System", "out", "Ljava/io/PrintStream;").
		Ldc("caught super").
		Invokevirtual("java/io/PrintStream", "println", "(Ljava/lang/String;)V").
		Op(bytecode.Return)
	cb.Handler(0, end, h, "java/lang/RuntimeException")
	cb.SetMaxStack(2).SetMaxLocals(1)
	m.Attributes = append(m.Attributes, cb.Build())
	data, _ := f.Bytes()
	o := New(HotSpot8()).Run(data)
	wantOutput(t, o, "caught super")
}

func TestInterpUncaughtWrongCatchType(t *testing.T) {
	// throw ArithmeticException, handler catches IOException: must not
	// match, error escapes.
	f := classfile.New("IWrongCatch")
	classfile.AttachDefaultInit(f)
	m := f.AddMethod(classfile.AccPublic|classfile.AccStatic, "main", "([Ljava/lang/String;)V")
	cb := classfile.NewCodeBuilder(f.Pool)
	cb.New("java/lang/ArithmeticException").Op(bytecode.Dup).
		Invokespecial("java/lang/ArithmeticException", "<init>", "()V").
		Op(bytecode.Athrow)
	end := cb.PC()
	h := cb.PC()
	cb.Op(bytecode.Pop).Op(bytecode.Return)
	cb.Handler(0, end, h, "java/io/IOException")
	cb.SetMaxStack(2).SetMaxLocals(1)
	m.Attributes = append(m.Attributes, cb.Build())
	data, _ := f.Bytes()
	o := New(HotSpot8()).Run(data)
	if o.Phase != PhaseRuntime || o.Error != ExcArithmetic {
		t.Errorf("exception must escape the mismatched handler, got %s", o)
	}
}

func TestInterpMathAndInteger(t *testing.T) {
	o := runMain(t, func(cb *classfile.CodeBuilder) {
		cb.LdcInt(-7).Invokestatic("java/lang/Math", "abs", "(I)I")
		cb.LdcInt(35).Invokestatic("java/lang/Math", "max", "(II)I")
		printInt(cb)
		cb.Op(bytecode.Return)
	}, 6, 4)
	wantOutput(t, o, "35")

	o = runMain(t, func(cb *classfile.CodeBuilder) {
		cb.LdcInt(42).
			Invokestatic("java/lang/Integer", "valueOf", "(I)Ljava/lang/Integer;").
			Invokevirtual("java/lang/Integer", "intValue", "()I")
		printInt(cb)
		cb.Op(bytecode.Return)
	}, 4, 4)
	wantOutput(t, o, "42")
}

func TestInterpMonitorOnNull(t *testing.T) {
	o := runMain(t, func(cb *classfile.CodeBuilder) {
		cb.Op(bytecode.AconstNull).Op(bytecode.Monitorenter).Op(bytecode.Return)
	}, 2, 1)
	if o.Error != ExcNullPointer {
		t.Errorf("want NullPointerException, got %s", o)
	}
}

func TestInterpStaticFieldDefaults(t *testing.T) {
	// Reading an unwritten static of the class under test yields the
	// descriptor's zero value.
	f := classfile.New("IStatics")
	f.AddField(classfile.AccPublic|classfile.AccStatic, "n", "I")
	classfile.AttachDefaultInit(f)
	m := f.AddMethod(classfile.AccPublic|classfile.AccStatic, "main", "([Ljava/lang/String;)V")
	cb := classfile.NewCodeBuilder(f.Pool)
	cb.Getstatic("IStatics", "n", "I")
	printInt(cb)
	cb.Op(bytecode.Return)
	cb.SetMaxStack(4).SetMaxLocals(4)
	m.Attributes = append(m.Attributes, cb.Build())
	data, _ := f.Bytes()
	o := New(HotSpot8()).Run(data)
	wantOutput(t, o, "0")
}
