package jvm

import "repro/internal/rtlib"

// Policy is the set of checking-and-verification knobs that
// differentiate the five VM simulators. Every knob corresponds to a
// behavioural difference documented in the paper (§1 preliminary study,
// §3.3 Problems 1–4) or in the JVM specification's latitude for
// implementations (lazy vs eager verification, §4.10 note).
type Policy struct {
	// --- versions -----------------------------------------------------

	// MaxMajorVersion is the newest classfile version the VM accepts.
	MaxMajorVersion uint16
	// MinMajorVersion guards against pre-1.0 files.
	MinMajorVersion uint16
	// AcceptNewerVersions makes the VM process classfiles beyond its
	// nominal platform version (GIJ conforms to 1.5 yet runs version-51
	// classes — Problem 4).
	AcceptNewerVersions bool

	// --- loading / format checking ------------------------------------

	// StrictConstantPool validates every cross-reference inside the
	// constant pool at load time.
	StrictConstantPool bool
	// ClinitExactness selects how a method named <clinit> is
	// classified (Problem 1). See ClinitRule values.
	ClinitRule ClinitRule
	// CheckInitSignature rejects <init> methods that are static, final,
	// synchronized, native or abstract, or that return a value
	// (HotSpot and J9 do; GIJ does not — Problem 4).
	CheckInitSignature bool
	// CheckMemberFlags enforces the access-flag well-formedness rules of
	// JVMS §4.5/§4.6 (at most one visibility, abstract excludes
	// final/native/..., volatile excludes final).
	CheckMemberFlags bool
	// CheckCodePresence rejects concrete methods without Code and
	// abstract/native methods with Code.
	CheckCodePresence bool
	// CheckDuplicateFields rejects two fields with the same
	// name+descriptor (GIJ accepts them — Problem 4).
	CheckDuplicateFields bool
	// CheckDuplicateMethods rejects two methods with the same
	// name+descriptor.
	CheckDuplicateMethods bool
	// CheckInterfaceMemberRules enforces that interface methods are
	// public abstract and interface fields are public static final
	// (all VMs but GIJ — Problem 4).
	CheckInterfaceMemberRules bool
	// CheckInterfaceSuperObject rejects interfaces whose superclass is
	// not java/lang/Object (all VMs but GIJ — Problem 4).
	CheckInterfaceSuperObject bool
	// CheckClassFlags enforces class-level flag rules (final∧abstract,
	// interface without abstract, annotation without interface).
	CheckClassFlags bool
	// CheckNameValidity rejects malformed binary names for the class,
	// members and descriptors at load time.
	CheckNameValidity bool

	// --- linking -------------------------------------------------------

	// CheckSuperNotFinal throws VerifyError when extending a final class
	// (the EnumEditor case in §1).
	CheckSuperNotFinal bool
	// EagerResolution resolves every symbolic field/method reference of
	// the constant pool during linking; lazily-resolving VMs defer
	// failures to runtime (GIJ).
	EagerResolution bool
	// CheckResolvedAccess rejects resolution of classes the environment
	// marks inaccessible (module-encapsulated sun.* under Java 9).
	CheckResolvedAccess bool
	// CheckThrowsClause resolves Exceptions-attribute entries at link
	// time and requires them accessible (HotSpot reports
	// IllegalAccessError for PiscesRenderingEngine$2 — Problem 3).
	CheckThrowsClause bool
	// EagerVerify verifies every method at linking (HotSpot). When
	// false, methods are verified on first invocation (J9, GIJ) —
	// Problem 2's "J9 only verifies a method when it is invoked".
	EagerVerify bool

	// --- verifier dialect ----------------------------------------------

	// VerifyUninitMerge rejects merges of initialized and uninitialized
	// types (GIJ reports this; HotSpot does not — Problem 2).
	VerifyUninitMerge bool
	// VerifyRefAssignability performs declared-type assignability checks
	// on invocation arguments and field stores (GIJ's strict dialect;
	// HotSpot misses such incompatible casts — Problem 2).
	VerifyRefAssignability bool
	// VerifyStrictStackShape requires reference types to match exactly
	// at control-flow merge points instead of widening to a common
	// supertype (J9's "stack shape inconsistent" — §1).
	VerifyStrictStackShape bool
	// VerifyTypeChecking selects the type-checking verifier of JVMS
	// §4.10.1 for version ≥ 50 classfiles: the StackMapTable attribute
	// drives verification, so an undecodable table is a ClassFormatError
	// reject rather than an ignorable hint (HotSpot and J9; GIJ predates
	// stack maps and always runs the inference verifier).
	VerifyTypeChecking bool
	// ForbidJsrRet rejects jsr/ret in version ≥ 51 classfiles.
	ForbidJsrRet bool

	// --- initialization / invocation ------------------------------------

	// InitStrictAccess re-checks accessibility of classes referenced by
	// <clinit> during initialization (HotSpot 9's module boundary makes
	// extra rejections surface here — Table 7's initialization row).
	InitStrictAccess bool
	// RequireStaticMain demands public static main; lenient VMs invoke
	// whatever main they find.
	RequireStaticMain bool
	// AllowInterfaceMain lets an interface's main method run (GIJ —
	// Problem 4).
	AllowInterfaceMain bool
	// StepBudget bounds interpreted bytecode steps per run.
	StepBudget int
}

// ClinitRule is the classification rule for methods named <clinit>
// (Problem 1 and the SE 8/9 specification clarification).
type ClinitRule int

const (
	// ClinitOrdinaryIfNonStatic follows the clarified SE 9 rule: in
	// version ≥ 51 files a non-static <clinit> is an ordinary method of
	// no consequence (HotSpot's behaviour).
	ClinitOrdinaryIfNonStatic ClinitRule = iota
	// ClinitAlwaysInitializer treats any method named <clinit> as the
	// class initializer and therefore demands a Code attribute — J9's
	// behaviour, reported by the paper as a J9 bug ("no Code attribute
	// specified ... method=<clinit>()V").
	ClinitAlwaysInitializer
	// ClinitIgnored performs no <clinit>-specific format checks (GIJ).
	ClinitIgnored
)

// Spec describes one simulated JVM implementation: its identity, the
// runtime library release it ships with, and its checking policy.
type Spec struct {
	Name    string
	Release rtlib.Release
	Policy  Policy
}

// hotspotBase is the shared HotSpot policy; release presets adjust it.
func hotspotBase() Policy {
	return Policy{
		MaxMajorVersion:           MajorOf("hotspot"),
		MinMajorVersion:           45,
		StrictConstantPool:        true,
		ClinitRule:                ClinitOrdinaryIfNonStatic,
		CheckInitSignature:        true,
		CheckMemberFlags:          true,
		CheckCodePresence:         true,
		CheckDuplicateFields:      true,
		CheckDuplicateMethods:     true,
		CheckInterfaceMemberRules: true,
		CheckInterfaceSuperObject: true,
		CheckClassFlags:           true,
		CheckNameValidity:         true,
		CheckSuperNotFinal:        true,
		EagerResolution:           true,
		CheckResolvedAccess:       false,
		CheckThrowsClause:         true,
		EagerVerify:               true,
		VerifyUninitMerge:         false,
		VerifyRefAssignability:    false,
		VerifyStrictStackShape:    false,
		VerifyTypeChecking:        true,
		ForbidJsrRet:              true,
		InitStrictAccess:          false,
		RequireStaticMain:         true,
		AllowInterfaceMain:        false,
		StepBudget:                100000,
	}
}

// MajorOf returns a large default ceiling; overridden per preset.
func MajorOf(string) uint16 { return 52 }

// HotSpot7 returns the simulator spec for HotSpot for Java 7.
func HotSpot7() Spec {
	p := hotspotBase()
	p.MaxMajorVersion = 51
	return Spec{Name: "HotSpot-Java7", Release: rtlib.JRE7, Policy: p}
}

// HotSpot8 returns the simulator spec for HotSpot for Java 8.
func HotSpot8() Spec {
	p := hotspotBase()
	p.MaxMajorVersion = 52
	return Spec{Name: "HotSpot-Java8", Release: rtlib.JRE8, Policy: p}
}

// HotSpot9 returns the simulator spec for HotSpot for Java 9 — the
// reference implementation used for coverage collection.
func HotSpot9() Spec {
	p := hotspotBase()
	p.MaxMajorVersion = 53
	p.CheckResolvedAccess = true // module encapsulation
	p.InitStrictAccess = true    // extra initialization-phase rejections
	return Spec{Name: "HotSpot-Java9", Release: rtlib.JRE9, Policy: p}
}

// J9 returns the simulator spec for IBM J9 (SDK 8).
func J9() Spec {
	p := hotspotBase()
	p.MaxMajorVersion = 52
	p.ClinitRule = ClinitAlwaysInitializer // Problem 1: J9's format error
	p.EagerVerify = false                  // verifies methods on invocation
	p.VerifyStrictStackShape = true        // "stack shape inconsistent"
	p.CheckThrowsClause = false            // Problem 3: no throws access check
	return Spec{Name: "J9-SDK8", Release: rtlib.JRE8, Policy: p}
}

// GIJ returns the simulator spec for GNU GIJ 5.1.0, the most lenient of
// the five VMs (Problem 4).
func GIJ() Spec {
	return Spec{Name: "GIJ-5.1.0", Release: rtlib.Classpath, Policy: Policy{
		MaxMajorVersion:           49, // nominally Java 1.5
		MinMajorVersion:           45,
		AcceptNewerVersions:       true, // yet it processes version 51 files
		StrictConstantPool:        false,
		ClinitRule:                ClinitIgnored,
		CheckInitSignature:        false, // accepts abstract/returning <init>
		CheckMemberFlags:          false,
		CheckCodePresence:         false, // a body is only needed when a method is invoked
		CheckDuplicateFields:      false, // accepts duplicate fields
		CheckDuplicateMethods:     true,
		CheckInterfaceMemberRules: false, // interface main, non-public members
		CheckInterfaceSuperObject: false, // interface extending Exception loads
		CheckClassFlags:           false,
		CheckNameValidity:         false,
		CheckSuperNotFinal:        false,
		EagerResolution:           false, // lazy: failures surface at runtime
		CheckResolvedAccess:       false,
		CheckThrowsClause:         false,
		EagerVerify:               false,
		VerifyUninitMerge:         true, // the one check GIJ has and HotSpot lacks
		VerifyRefAssignability:    true, // catches the internalTransform cast
		VerifyStrictStackShape:    false,
		VerifyTypeChecking:        false, // pre-stack-map verifier only
		ForbidJsrRet:              false,
		InitStrictAccess:          false,
		RequireStaticMain:         false,
		AllowInterfaceMain:        true,
		StepBudget:                100000,
	}}
}

// StandardFive returns the five specs of Table 3 in evaluation order:
// HotSpot 7, HotSpot 8, HotSpot 9, J9, GIJ.
func StandardFive() []Spec {
	return []Spec{HotSpot7(), HotSpot8(), HotSpot9(), J9(), GIJ()}
}
