package jvm_test

import (
	"reflect"
	"testing"

	"repro/internal/catalog"
	"repro/internal/classfile"
	"repro/internal/coverage"
	"repro/internal/jimple"
	"repro/internal/jvm"
	"repro/internal/mutation"
	"repro/internal/prng"
	"repro/internal/rtlib"
	"repro/internal/seedgen"
)

// memoCorpus builds the equivalence corpus: every catalog entry
// (curated discrepancy triggers) plus one lowered mutant per mutation
// operator — all 129 — from a deterministic seed pool. Unlowerable or
// inapplicable combinations are skipped; every mutation family still
// contributes because applicability is retried across seeds.
func memoCorpus(t *testing.T) [][]byte {
	t.Helper()
	var corpus [][]byte
	for _, e := range catalog.Entries() {
		data, err := e.Data()
		if err != nil {
			t.Fatalf("catalog %s: %v", e.ID, err)
		}
		corpus = append(corpus, data)
	}
	seeds := seedgen.Generate(seedgen.DefaultOptions(8, 3))
	for _, m := range mutation.Registry() {
		applied := false
		for si, s := range seeds {
			mutant := s.Clone()
			if !m.Apply(mutant, prng.Derive(11, uint64(m.ID), uint64(si))) {
				continue
			}
			f, err := jimple.Lower(mutant)
			if err != nil {
				continue
			}
			data, err := f.Bytes()
			if err != nil {
				continue
			}
			corpus = append(corpus, data)
			applied = true
			break
		}
		if !applied {
			t.Logf("mutator %s: inapplicable on every corpus seed (family still covered by others)", m.Name)
		}
	}
	return corpus
}

// TestVerifyMemoOutcomeEquivalence is the tentpole's correctness
// contract, proven the repository's way: for every corpus class and
// every one of the five presets, the memoised VM — cold (filling) and
// warm (hitting) — must produce the exact Outcome and the exact
// coverage trace of an unmemoised run. Zero waivers: any field of any
// outcome differing fails.
func TestVerifyMemoOutcomeEquivalence(t *testing.T) {
	corpus := memoCorpus(t)
	memo := jvm.NewVerifyMemo() // one shared memo across all five presets
	for _, spec := range jvm.StandardFive() {
		off := jvm.New(spec)
		cold := jvm.New(spec)
		cold.SetVerifyMemo(memo)
		warm := jvm.New(spec)
		warm.SetVerifyMemo(memo)
		for ci, data := range corpus {
			recOff := coverage.NewRecorder(jvm.ProbeRegistry())
			off.SetRecorder(recOff)
			want := off.Run(data)

			recCold := coverage.NewRecorder(jvm.ProbeRegistry())
			cold.SetRecorder(recCold)
			gotCold := cold.Run(data)

			recWarm := coverage.NewRecorder(jvm.ProbeRegistry())
			warm.SetRecorder(recWarm)
			gotWarm := warm.Run(data)

			if !reflect.DeepEqual(want, gotCold) {
				t.Fatalf("%s class %d: cold memo outcome diverged\n got %+v\nwant %+v", spec.Name, ci, gotCold, want)
			}
			if !reflect.DeepEqual(want, gotWarm) {
				t.Fatalf("%s class %d: warm memo outcome diverged\n got %+v\nwant %+v", spec.Name, ci, gotWarm, want)
			}
			if !recOff.Trace().EqualSets(recCold.Trace()) {
				t.Fatalf("%s class %d: cold memo trace diverged", spec.Name, ci)
			}
			if !recOff.Trace().EqualSets(recWarm.Trace()) {
				t.Fatalf("%s class %d: warm memo trace diverged", spec.Name, ci)
			}
		}
	}
	if memo.Len() == 0 {
		t.Fatal("memo stayed empty — the equivalence run never exercised it")
	}
}

// TestVerifyMemoRecorderlessEquivalence covers the probe-less lane
// (difftest lineups run without recorders): outcomes must match with
// and without a memo, cold and warm.
func TestVerifyMemoRecorderlessEquivalence(t *testing.T) {
	corpus := memoCorpus(t)
	memo := jvm.NewVerifyMemo()
	for _, spec := range jvm.StandardFive() {
		off := jvm.New(spec)
		on := jvm.New(spec)
		on.SetVerifyMemo(memo)
		for ci, data := range corpus {
			want := off.Run(data)
			for pass := 0; pass < 2; pass++ { // cold then warm
				if got := on.Run(data); !reflect.DeepEqual(want, got) {
					t.Fatalf("%s class %d pass %d: %+v != %+v", spec.Name, ci, pass, got, want)
				}
			}
		}
	}
}

// TestVerifyMemoExportImportRoundTrip pins persistence: exporting a
// populated memo, importing into a fresh one against the same lineup,
// and re-exporting must reproduce the identical entry list, and the
// imported memo must serve recorder-less runs with identical outcomes.
func TestVerifyMemoExportImportRoundTrip(t *testing.T) {
	corpus := memoCorpus(t)
	memo := jvm.NewVerifyMemo()
	var vms []*jvm.VM
	for _, spec := range jvm.StandardFive() {
		vm := jvm.New(spec)
		vm.SetVerifyMemo(memo)
		vms = append(vms, vm)
	}
	for _, vm := range vms {
		for _, data := range corpus[:40] {
			vm.Run(data)
		}
	}
	exp := memo.Export()
	if len(exp) == 0 {
		t.Fatal("export produced no entries")
	}
	fresh := jvm.NewVerifyMemo()
	if n := fresh.Import(exp, vms); n != len(exp) {
		t.Fatalf("import adopted %d of %d entries", n, len(exp))
	}
	if again := fresh.Export(); !reflect.DeepEqual(exp, again) {
		t.Fatalf("round-trip changed the export: %d vs %d entries", len(exp), len(again))
	}
	// Unknown signatures (a drifted lineup) are dropped, not adopted.
	drifted := jvm.New(jvm.HotSpot9())
	drifted.Spec.Policy.EagerVerify = !drifted.Spec.Policy.EagerVerify
	none := jvm.NewVerifyMemo()
	if n := none.Import(exp, []*jvm.VM{drifted}); n != 0 {
		t.Fatalf("drifted lineup adopted %d entries, want 0", n)
	}
}

// memoKeyClass builds a class whose single method body is fixed while
// the class name and one method name vary — the MethodKey unit probe.
func memoKeyClass(t *testing.T, clsName, methName string) (*classfile.File, *classfile.Member) {
	t.Helper()
	f := classfile.New(clsName)
	m := f.AddMethod(classfile.AccPublic|classfile.AccStatic, methName, "()V")
	m.Attributes = append(m.Attributes, &classfile.CodeAttr{
		MaxStack: 1, MaxLocals: 1, Code: []byte{0xb1},
	})
	return f, m
}

// TestMethodKeySelfNameMasking pins the key's two edges at method
// granularity: classes identical up to the self-name (different
// lengths included) collide per method, and a single referenced-Utf8
// edit — the method's own name — separates them.
func TestMethodKeySelfNameMasking(t *testing.T) {
	env := rtlib.NewEnv(rtlib.JRE9)
	fa, ma := memoKeyClass(t, "Alpha", "go")
	fb, mb := memoKeyClass(t, "Mutant_00042", "go")
	ka, oka := jvm.NewVerifyKeyCtx(fa, env).Key(ma)
	kb, okb := jvm.NewVerifyKeyCtx(fb, env).Key(mb)
	if !oka || !okb {
		t.Fatal("keys not computable for Code-bearing methods")
	}
	if ka != kb {
		t.Fatalf("self-name-masked method keys diverged: %+v vs %+v", ka, kb)
	}
	fc, mc := memoKeyClass(t, "Alpha", "gp")
	kc, _ := jvm.NewVerifyKeyCtx(fc, env).Key(mc)
	if kc == ka {
		t.Fatal("single Utf8 edit did not change the method key")
	}
	// A method without Code has no verification input and no key.
	fd := classfile.New("Alpha")
	md := fd.AddMethod(classfile.AccPublic|classfile.AccStatic|classfile.AccAbstract, "go", "()V")
	if _, ok := jvm.NewVerifyKeyCtx(fd, env).Key(md); ok {
		t.Fatal("abstract method produced a verification key")
	}
}
