package jvm

import (
	"strings"

	"repro/internal/classfile"
	"repro/internal/descriptor"
)

// load performs the creation & loading phase: version gate, constant
// pool integrity, format checking of class/field/method structures
// (JVMS §4.8 "format checking" happens under loading, which is why the
// errors here are ClassFormatError / UnsupportedClassVersionError /
// ClassCircularityError / NoClassDefFoundError — Table 1 of the paper).
func (vm *VM) load(f *classfile.File) (Outcome, bool) {
	p := &vm.Spec.Policy
	vm.st(pLoadEnter)

	// ---- version gate ---------------------------------------------------
	if vm.br(bLoadVersionMin, f.Major < p.MinMajorVersion) {
		return reject(PhaseLoading, ErrClassFormat, "major version %d below minimum", f.Major), true
	}
	tooNew := f.Major > p.MaxMajorVersion
	if vm.br(bLoadVersionMax, tooNew) {
		if !p.AcceptNewerVersions {
			return reject(PhaseLoading, ErrUnsupportedVersion, "unsupported major.minor version %d.%d", f.Major, f.Minor), true
		}
		vm.st(pLoadVersionTolerated)
	}

	// ---- constant pool integrity ----------------------------------------
	if out, bad := vm.checkConstantPool(f); bad {
		return out, true
	}

	// ---- this_class / superclass names ----------------------------------
	name, ok := f.Pool.ClassName(f.ThisClass)
	if vm.br(bLoadThisclassValid, !ok) {
		return reject(PhaseLoading, ErrClassFormat, "bad this_class index %d", f.ThisClass), true
	}
	if p.CheckNameValidity && vm.br(bLoadThisclassName, !descriptor.ValidClassName(name)) {
		return reject(PhaseLoading, ErrClassFormat, "illegal class name %q", name), true
	}
	if vm.br(bLoadSuperZero, f.SuperClass == 0) {
		// Only java/lang/Object may omit a superclass.
		if name != "java/lang/Object" {
			return reject(PhaseLoading, ErrClassFormat, "class %s has no superclass", name), true
		}
	} else {
		if _, ok := f.Pool.ClassName(f.SuperClass); vm.br(bLoadSuperValid, !ok) {
			return reject(PhaseLoading, ErrClassFormat, "bad super_class index %d", f.SuperClass), true
		}
	}
	for _, idx := range f.Interfaces {
		vm.st(pLoadIfaceEntry)
		if _, ok := f.Pool.ClassName(idx); vm.br(bLoadIfaceValid, !ok) {
			return reject(PhaseLoading, ErrClassFormat, "bad interface index %d", idx), true
		}
	}

	// ---- class flags -----------------------------------------------------
	flags := f.AccessFlags
	if p.CheckClassFlags {
		vm.st(pLoadClassflags)
		if vm.br(bLoadClassflagsFinalabstract, flags.Has(classfile.AccFinal|classfile.AccAbstract)) {
			return reject(PhaseLoading, ErrClassFormat, "class %s is both final and abstract", name), true
		}
		if flags.Has(classfile.AccInterface) {
			if vm.br(bLoadClassflagsIfaceabstract, !flags.Has(classfile.AccAbstract)) {
				return reject(PhaseLoading, ErrClassFormat, "interface %s missing ACC_ABSTRACT", name), true
			}
			if vm.br(bLoadClassflagsIfacefinal, flags.Has(classfile.AccFinal)) {
				return reject(PhaseLoading, ErrClassFormat, "interface %s is final", name), true
			}
		}
		if vm.br(bLoadClassflagsAnnotation, flags.Has(classfile.AccAnnotation) && !flags.Has(classfile.AccInterface)) {
			return reject(PhaseLoading, ErrClassFormat, "annotation %s is not an interface", name), true
		}
	}

	// ---- interface superclass must be Object (Problem 4) ------------------
	if f.IsInterface() && p.CheckInterfaceSuperObject {
		super := f.SuperName()
		if vm.br(bLoadIfaceSuperobject, super != "java/lang/Object") {
			return reject(PhaseLoading, ErrClassFormat, "interface %s has superclass %s (must be java/lang/Object)", name, super), true
		}
	}

	// ---- fields ------------------------------------------------------------
	seenFields := make(map[string]bool, len(f.Fields))
	for _, fl := range f.Fields {
		vm.st(pLoadFieldEntry)
		fname := fl.Name(f.Pool)
		fdesc := fl.Descriptor(f.Pool)
		if vm.br(bLoadFieldCpvalid, fname == "" || fdesc == "") {
			return reject(PhaseLoading, ErrClassFormat, "field with dangling name/descriptor index"), true
		}
		if p.CheckNameValidity && vm.br(bLoadFieldDesc, !descriptor.ValidField(fdesc)) {
			return reject(PhaseLoading, ErrClassFormat, "field %s has malformed descriptor %q", fname, fdesc), true
		}
		key := fname + ":" + fdesc
		if p.CheckDuplicateFields && vm.br(bLoadFieldDup, seenFields[key]) {
			return reject(PhaseLoading, ErrClassFormat, "duplicate field %s", key), true
		}
		seenFields[key] = true
		if p.CheckMemberFlags {
			if vm.br(bLoadFieldVis, fl.AccessFlags.VisibilityCount() > 1) {
				return reject(PhaseLoading, ErrClassFormat, "field %s has conflicting visibility flags", fname), true
			}
			if vm.br(bLoadFieldFinalvolatile, fl.AccessFlags.Has(classfile.AccFinal|classfile.AccVolatile)) {
				return reject(PhaseLoading, ErrClassFormat, "field %s is both final and volatile", fname), true
			}
		}
		if f.IsInterface() && p.CheckInterfaceMemberRules {
			want := classfile.AccPublic | classfile.AccStatic | classfile.AccFinal
			if vm.br(bLoadFieldIfacerules, !fl.AccessFlags.Has(want)) {
				return reject(PhaseLoading, ErrClassFormat, "interface field %s must be public static final", fname), true
			}
		}
	}

	// ---- methods -------------------------------------------------------------
	seenMethods := make(map[string]bool, len(f.Methods))
	for _, m := range f.Methods {
		vm.st(pLoadMethodEntry)
		mname := m.Name(f.Pool)
		mdesc := m.Descriptor(f.Pool)
		if vm.br(bLoadMethodCpvalid, mname == "" || mdesc == "") {
			return reject(PhaseLoading, ErrClassFormat, "method with dangling name/descriptor index"), true
		}
		if p.CheckNameValidity && vm.br(bLoadMethodDesc, !descriptor.ValidMethod(mdesc)) {
			return reject(PhaseLoading, ErrClassFormat, "method %s has malformed descriptor %q", mname, mdesc), true
		}
		key := mname + mdesc
		if p.CheckDuplicateMethods && vm.br(bLoadMethodDup, seenMethods[key]) {
			return reject(PhaseLoading, ErrClassFormat, "duplicate method %s", key), true
		}
		seenMethods[key] = true

		if out, bad := vm.checkMethodShape(f, m, mname, mdesc); bad {
			return out, true
		}
	}

	vm.st(pLoadOk)
	return Outcome{}, false
}

// checkMethodShape applies the per-method format rules, including the
// <clinit> classification policy of Problem 1.
func (vm *VM) checkMethodShape(f *classfile.File, m *classfile.Member, mname, mdesc string) (Outcome, bool) {
	p := &vm.Spec.Policy
	flags := m.AccessFlags
	hasCode := m.Code() != nil

	// <clinit> classification (Problem 1). Under the clarified SE 9 rule
	// a version ≥ 51 <clinit> is an initializer only when static, ()V.
	if mname == "<clinit>" {
		vm.st(pLoadClinitSeen)
		isInitializer := false
		switch p.ClinitRule {
		case ClinitOrdinaryIfNonStatic:
			isInitializer = flags.Has(classfile.AccStatic) && mdesc == "()V"
			vm.br(bLoadClinitSe9rule, isInitializer)
		case ClinitAlwaysInitializer:
			isInitializer = true
			vm.st(pLoadClinitLegacyrule)
		case ClinitIgnored:
			vm.st(pLoadClinitIgnored)
		}
		if isInitializer {
			// The initializer needs executable code.
			if vm.br(bLoadClinitCode, !hasCode) {
				return reject(PhaseLoading, ErrClassFormat,
					"no Code attribute specified; method=<clinit>%s, pc=0", mdesc), true
			}
			// An initializer is exempt from ordinary-method flag rules.
			return Outcome{}, false
		}
		// Ordinary method named <clinit>: falls through to the general
		// rules (HotSpot's "of no consequence" path).
		vm.st(pLoadClinitOrdinary)
	}

	if p.CheckMemberFlags {
		if vm.br(bLoadMethodVis, flags.VisibilityCount() > 1) {
			return reject(PhaseLoading, ErrClassFormat, "method %s has conflicting visibility flags", mname), true
		}
		bad := flags.Has(classfile.AccAbstract) &&
			(flags.Has(classfile.AccFinal) || flags.Has(classfile.AccStatic) ||
				flags.Has(classfile.AccNative) || flags.Has(classfile.AccPrivate) ||
				flags.Has(classfile.AccSynchronized) || flags.Has(classfile.AccStrict))
		if vm.br(bLoadMethodAbstractcombo, bad) {
			return reject(PhaseLoading, ErrClassFormat, "abstract method %s has conflicting flags", mname), true
		}
	}

	if f.IsInterface() && p.CheckInterfaceMemberRules && mname != "<clinit>" {
		want := classfile.AccPublic | classfile.AccAbstract
		if vm.br(bLoadMethodIfacerules, !flags.Has(want)) {
			return reject(PhaseLoading, ErrClassFormat, "interface method %s must be public abstract", mname), true
		}
	}

	// <init> rules (Problem 4: GIJ accepts abstract/static/returning <init>).
	if mname == "<init>" && p.CheckInitSignature {
		vm.st(pLoadInitSeen)
		banned := classfile.AccStatic | classfile.AccFinal | classfile.AccSynchronized |
			classfile.AccNative | classfile.AccAbstract
		if vm.br(bLoadInitFlags, flags&banned != 0) {
			return reject(PhaseLoading, ErrClassFormat, "<init> has illegal flags %s", flags.MethodFlagString()), true
		}
		if md, err := descriptor.ParseMethod(mdesc); err == nil {
			if vm.br(bLoadInitReturns, !md.Return.IsVoid()) {
				return reject(PhaseLoading, ErrClassFormat, "<init> must return void, not %s", md.Return.Java()), true
			}
		}
		if vm.br(bLoadInitOninterface, f.IsInterface()) {
			return reject(PhaseLoading, ErrClassFormat, "interface declares <init>"), true
		}
	}

	if p.CheckCodePresence {
		abstractOrNative := flags.Has(classfile.AccAbstract) || flags.Has(classfile.AccNative)
		if vm.br(bLoadMethodCodeabsent, !abstractOrNative && !hasCode) {
			return reject(PhaseLoading, ErrClassFormat, "concrete method %s%s lacks a Code attribute", mname, mdesc), true
		}
		if vm.br(bLoadMethodCodepresent, abstractOrNative && hasCode) {
			return reject(PhaseLoading, ErrClassFormat, "abstract/native method %s%s has a Code attribute", mname, mdesc), true
		}
	}
	return Outcome{}, false
}

// checkConstantPool validates the internal shape of the pool. Strict
// VMs validate every cross-reference at load; lenient VMs only enough
// to walk the structures.
func (vm *VM) checkConstantPool(f *classfile.File) (Outcome, bool) {
	p := &vm.Spec.Policy
	cp := f.Pool
	vm.st(pLoadCpEnter)
	for i := 1; i < cp.Count(); i++ {
		c := cp.Get(uint16(i))
		if c == nil {
			continue
		}
		vm.st(cpTagProbes[byte(c.Tag)])
		if !p.StrictConstantPool {
			continue
		}
		switch c.Tag {
		case classfile.TagClass, classfile.TagString, classfile.TagMethodType:
			if t := cp.Get(c.Ref1); vm.br(bLoadCpRef1utf8, t == nil || t.Tag != classfile.TagUtf8) {
				return reject(PhaseLoading, ErrClassFormat, "constant #%d (%s) references non-Utf8 #%d", i, c.Tag, c.Ref1), true
			}
		case classfile.TagNameAndType:
			t1, t2 := cp.Get(c.Ref1), cp.Get(c.Ref2)
			bad := t1 == nil || t1.Tag != classfile.TagUtf8 || t2 == nil || t2.Tag != classfile.TagUtf8
			if vm.br(bLoadCpNatvalid, bad) {
				return reject(PhaseLoading, ErrClassFormat, "NameAndType #%d has dangling references", i), true
			}
		case classfile.TagFieldref, classfile.TagMethodref, classfile.TagInterfaceMethodref:
			t1, t2 := cp.Get(c.Ref1), cp.Get(c.Ref2)
			bad := t1 == nil || t1.Tag != classfile.TagClass || t2 == nil || t2.Tag != classfile.TagNameAndType
			if vm.br(bLoadCpMembervalid, bad) {
				return reject(PhaseLoading, ErrClassFormat, "%s #%d has dangling references", c.Tag, i), true
			}
			// Field descriptors must parse as field types, method ones as
			// method types.
			_, desc, _ := cp.NameAndType(c.Ref2)
			if c.Tag == classfile.TagFieldref {
				if vm.br(bLoadCpFielddesc, !descriptor.ValidField(desc)) {
					return reject(PhaseLoading, ErrClassFormat, "Fieldref #%d has non-field descriptor %q", i, desc), true
				}
			} else {
				if vm.br(bLoadCpMethoddesc, !descriptor.ValidMethod(desc)) {
					return reject(PhaseLoading, ErrClassFormat, "%s #%d has non-method descriptor %q", c.Tag, i, desc), true
				}
			}
		case classfile.TagMethodHandle:
			if vm.br(bLoadCpMhkind, c.Kind < 1 || c.Kind > 9) {
				return reject(PhaseLoading, ErrClassFormat, "MethodHandle #%d has kind %d", i, c.Kind), true
			}
		}
	}

	// Class-name constants must be structurally plausible names.
	if p.StrictConstantPool && p.CheckNameValidity {
		for i := 1; i < cp.Count(); i++ {
			c := cp.Get(uint16(i))
			if c == nil || c.Tag != classfile.TagClass {
				continue
			}
			n, _ := cp.Utf8(c.Ref1)
			// Array-of-void and descriptor junk in class entries.
			if vm.br(bLoadCpClassname, strings.HasPrefix(n, "[") && !descriptor.ValidField(n)) {
				return reject(PhaseLoading, ErrClassFormat, "Class constant #%d has malformed array name %q", i, n), true
			}
		}
	}
	vm.st(pLoadCpOk)
	return Outcome{}, false
}
