package jvm

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"

	"repro/internal/classfile"
	"repro/internal/coverage"
	"repro/internal/rtlib"
	"repro/internal/telemetry"
)

// VerifyOracle names which verifier implementation produced a memoised
// verdict. The runtime verifier (this package) and the static dataflow
// mirror (internal/analysis/dataflow) are kept in distinct key spaces
// even though the crosscheck harness holds them outcome-identical:
// sharing entries across them would let a memo hit mask exactly the
// implementation divergence the differential oracle exists to catch.
type VerifyOracle uint8

const (
	// OracleVM marks verdicts of the runtime verifier (VM.runVerifier).
	OracleVM VerifyOracle = iota
	// OracleDataflow marks verdicts of analysis/dataflow.VerifyMethod.
	OracleDataflow
)

// VerifyIdent identifies one verification context: the full spec (every
// policy knob), the library release actually bound, and the oracle.
// Verify verdicts are pure functions of (method key, ident), so equal
// idents may share verdicts across classes, lineups and sessions.
type VerifyIdent struct {
	Spec   Spec
	Env    rtlib.Release
	Oracle VerifyOracle
}

// sig is the ident's stable on-disk signature, mirroring the difftest
// memo's identSig discipline (FNV-64a over the printed spec).
func (id VerifyIdent) sig() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v|%d|%d", id.Spec, int(id.Env), int(id.Oracle))
	return h.Sum64()
}

// Metric names of the method-verification memo. Like the difftest
// engine's counters these are diagnostics, not oracle inputs: under
// parallel evaluation the hit/miss split depends on scheduling (two
// workers may race to verify the same key), while outcomes and traces
// stay deterministic because entries are content-addressed and pure.
const (
	MetricVerifyMemoHits   = "jvm.verify.method_memo.hit"
	MetricVerifyMemoMisses = "jvm.verify.method_memo.miss"
	MetricVerifyMemoUnsafe = "jvm.verify.method_memo.unsafe_fallback"
)

type verifyMemoTel struct {
	hits   *telemetry.Counter
	misses *telemetry.Counter
	unsafe *telemetry.Counter
}

func newVerifyMemoTel(reg *telemetry.Registry) verifyMemoTel {
	return verifyMemoTel{
		hits:   reg.Counter(MetricVerifyMemoHits),
		misses: reg.Counter(MetricVerifyMemoMisses),
		unsafe: reg.Counter(MetricVerifyMemoUnsafe),
	}
}

type verifyMemoKey struct {
	id  VerifyIdent
	key MethodKey
}

// verifyEntry is one memoised verdict. Entries are immutable after
// insertion — the probe sets are never appended to and the outcome is
// copied out on every hit — so a shared entry can be read without
// holding the memo lock.
type verifyEntry struct {
	ok        bool
	out       Outcome // the rejection when !ok
	hasProbes bool
	stmts     []uint32
	edges     []uint32
}

// VerifyMemo memoises per-method verification verdicts across mutant
// generations, keyed by MethodKey × VerifyIdent. One memo may be shared
// by any number of VMs and goroutines (a single mutex guards the map;
// lookups are trivial next to a dataflow fixpoint).
//
// Entries computed under an attached coverage recorder also carry the
// verifier's probe footprint (as hit sets), so a hit replays the exact
// statement/branch sets a live run would have recorded and campaign
// traces stay byte-identical. Recorder-attached VMs only accept entries
// that carry probes; probe IDs are process-local interning order, so
// imported (persisted) entries serve recorder-less lineups only.
type VerifyMemo struct {
	mu  sync.Mutex
	m   map[verifyMemoKey]*verifyEntry
	reg *telemetry.Registry
	tel verifyMemoTel
}

// NewVerifyMemo returns an empty memo reporting into a private registry
// (read via Stats; redirect with UseTelemetry).
func NewVerifyMemo() *VerifyMemo {
	m := &VerifyMemo{m: make(map[verifyMemoKey]*verifyEntry, 256), reg: telemetry.New()}
	m.tel = newVerifyMemoTel(m.reg)
	return m
}

// UseTelemetry rebinds the memo's jvm.verify.method_memo.* counters to
// an external registry. Existing tallies stay in the old registry.
func (m *VerifyMemo) UseTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.reg = reg
	m.tel = newVerifyMemoTel(reg)
}

// Stats snapshots the memo's counters.
func (m *VerifyMemo) Stats() telemetry.Snapshot {
	m.mu.Lock()
	reg := m.reg
	m.mu.Unlock()
	return reg.Snapshot()
}

// Len returns the number of memoised verdicts.
func (m *VerifyMemo) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.m)
}

// Lookup returns the memoised verdict for (id, key): (nil, true) for a
// remembered pass, a private copy of the rejection for a remembered
// failure, or (nil, false) on a miss.
func (m *VerifyMemo) Lookup(id VerifyIdent, key MethodKey) (*Outcome, bool) {
	e, ok := m.probe(id, key, false)
	if !ok {
		return nil, false
	}
	if e.ok {
		return nil, true
	}
	out := e.out
	return &out, true
}

// Store records a verdict computed without probe capture (out nil =
// pass). selfName is the class-under-test name the key masked: a
// rejection whose message embeds it is lineage-specific text that must
// not resurface under a different class name, so it is not stored and
// the unsafe_fallback counter ticks instead.
func (m *VerifyMemo) Store(id VerifyIdent, key MethodKey, selfName string, out *Outcome) {
	m.store(id, key, selfName, out, nil, nil, false)
}

// probe is the locked lookup. needProbes demands an entry carrying a
// probe footprint (recorder-attached VMs); entries without one read as
// misses there so the caller re-verifies and upgrades the entry.
func (m *VerifyMemo) probe(id VerifyIdent, key MethodKey, needProbes bool) (verifyEntry, bool) {
	k := verifyMemoKey{id: id, key: key}
	m.mu.Lock()
	e, ok := m.m[k]
	if ok && needProbes && !e.hasProbes {
		ok = false
	}
	if ok {
		m.tel.hits.Inc()
	} else {
		m.tel.misses.Inc()
	}
	m.mu.Unlock()
	if !ok {
		return verifyEntry{}, false
	}
	return *e, true
}

// store inserts a verdict. Duplicate stores from racing workers carry
// identical content (keys are content-addressed and verifiers pure);
// an entry with probes is never downgraded to one without.
func (m *VerifyMemo) store(id VerifyIdent, key MethodKey, selfName string, out *Outcome, stmts, edges []uint32, hasProbes bool) {
	if out != nil && selfName != "" && strings.Contains(out.Message, selfName) {
		// The rejection text names the class under test; memoising it
		// would replay the parent's name into a child's outcome. Skip —
		// the key stays correct, only this message is lineage-bound.
		m.mu.Lock()
		m.tel.unsafe.Inc()
		m.mu.Unlock()
		return
	}
	e := &verifyEntry{ok: out == nil, hasProbes: hasProbes, stmts: stmts, edges: edges}
	if out != nil {
		e.out = *out
	}
	k := verifyMemoKey{id: id, key: key}
	m.mu.Lock()
	if old, ok := m.m[k]; !ok || (!old.hasProbes && hasProbes) {
		m.m[k] = e
	}
	m.mu.Unlock()
}

// verifyMethodMemo is the memoised path behind verifyMethod: probe the
// shared memo, replay the stored probe footprint on a hit, and capture
// the verifier's probes into a per-VM scratch recorder on a miss so the
// entry can serve recorder-attached VMs later.
func (vm *VM) verifyMethodMemo(ex *execState, m *classfile.Member) *Outcome {
	memo := vm.verifyMemo
	if memo == nil {
		return vm.runVerifier(ex, m)
	}
	if ex.vkey == nil {
		ex.vkey = NewVerifyKeyCtx(ex.f, vm.Env)
	}
	key, ok := ex.vkey.Key(m)
	if !ok {
		return vm.runVerifier(ex, m)
	}
	id := VerifyIdent{Spec: vm.Spec, Env: vm.Env.Release, Oracle: OracleVM}
	if e, hit := memo.probe(id, key, vm.cov != nil); hit {
		vm.cov.ReplayHits(e.stmts, e.edges)
		if e.ok {
			return nil
		}
		out := e.out
		return &out
	}
	if vm.cov == nil {
		out := vm.runVerifier(ex, m)
		memo.store(id, key, ex.name, out, nil, nil, false)
		return out
	}
	// Swap in the scratch recorder for the duration of the verifier run:
	// every probe it fires (enter/ok/rejected, the dataflow's branch
	// probes, the interned verify.err.* statement) funnels through
	// vm.cov, so the captured hit sets are exactly the footprint a
	// replay must reproduce.
	if vm.vcap == nil {
		vm.vcap = coverage.NewRecorder(probes)
	}
	real := vm.cov
	vm.cov = vm.vcap
	out := vm.runVerifier(ex, m)
	stmts, edges := vm.vcap.HitSets()
	vm.vcap.Reset()
	vm.cov = real
	vm.cov.ReplayHits(stmts, edges)
	memo.store(id, key, ex.name, out, stmts, edges, true)
	return out
}

// VerifyMemoExportEntry is one persisted verdict: the ident signature,
// the 128-bit method key, and the outcome. Probe footprints are
// process-local interning order and deliberately absent (the snapshot
// discipline traces follow); imported entries therefore serve
// recorder-less lineups and read as misses under a recorder.
type VerifyMemoExportEntry struct {
	Sig     uint64   `json:"sig"`
	KeyLo   uint64   `json:"key_lo"`
	KeyHi   uint64   `json:"key_hi"`
	OK      bool     `json:"ok"`
	Outcome *Outcome `json:"outcome,omitempty"`
}

// Export snapshots every verdict in a deterministic order (sorted by
// signature, then key), so persisting an equal memo always produces
// identical bytes.
func (m *VerifyMemo) Export() []VerifyMemoExportEntry {
	m.mu.Lock()
	out := make([]VerifyMemoExportEntry, 0, len(m.m))
	for k, e := range m.m { //detlint:ok entries sorted before emission
		ent := VerifyMemoExportEntry{
			Sig:   k.id.sig(),
			KeyLo: k.key.Lo,
			KeyHi: k.key.Hi,
			OK:    e.ok,
		}
		if !e.ok {
			o := e.out
			ent.Outcome = &o
		}
		out = append(out, ent)
	}
	m.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Sig != out[j].Sig {
			return out[i].Sig < out[j].Sig
		}
		if out[i].KeyLo != out[j].KeyLo {
			return out[i].KeyLo < out[j].KeyLo
		}
		return out[i].KeyHi < out[j].KeyHi
	})
	return out
}

// Import adopts exported verdicts whose signature matches one of the
// given VMs' identities (runtime-verifier oracle only — the importer
// has no dataflow callers today, and unknown signatures are dropped
// exactly like the difftest memo drops retired lineups). Returns how
// many verdicts were adopted.
func (m *VerifyMemo) Import(entries []VerifyMemoExportEntry, vms []*VM) int {
	bySig := make(map[uint64]VerifyIdent, len(vms))
	for _, vm := range vms {
		id := VerifyIdent{Spec: vm.Spec, Env: vm.Env.Release, Oracle: OracleVM}
		bySig[id.sig()] = id
	}
	n := 0
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, ent := range entries {
		id, ok := bySig[ent.Sig]
		if !ok {
			continue
		}
		if !ent.OK && ent.Outcome == nil {
			continue
		}
		k := verifyMemoKey{id: id, key: MethodKey{Lo: ent.KeyLo, Hi: ent.KeyHi}}
		if _, exists := m.m[k]; exists {
			continue
		}
		e := &verifyEntry{ok: ent.OK}
		if !ent.OK {
			e.out = *ent.Outcome
		}
		m.m[k] = e
		n++
	}
	return n
}

// ShareVerifyMemo attaches one memo to every VM of a lineup.
func ShareVerifyMemo(vms []*VM, m *VerifyMemo) {
	for _, vm := range vms {
		vm.SetVerifyMemo(m)
	}
}
