package jvm

import (
	"math"
	"math/bits"

	"repro/internal/classfile"
	"repro/internal/rtlib"
)

// Method-granular verification keys for the lineage-delta memo.
//
// A MethodKey is a 128-bit content hash of everything the verifier (the
// runtime dataflow verifier in this package and the static mirror in
// internal/analysis/dataflow) can read while verifying one method body:
//
//   - per-class context, hashed once per class into a VerifyKeyCtx:
//     major version, class access flags, the super/interface indices,
//     every constant-pool entry in slot order, and whether the class's
//     own name resolves in the bound library environment;
//   - per-method bits: access flags, name/descriptor indices (the pool
//     hash covers their content), the Code attribute's max_stack /
//     max_locals / raw code bytes / exception table, and the raw
//     StackMapTable bytes (presets that type-check only ever test the
//     table for decodability, a pure function of those bytes).
//
// The key extends analysis.VerifyFingerprint's self-name masking to
// method granularity: every Utf8 pool entry equal to the class's own
// name hashes as an opaque marker instead of its content, so a mutant
// that differs from its parent only by the generated class name (every
// generation renames to M<iter>) produces identical keys for untouched
// methods. Verifier behaviour is invariant under renaming the self
// class because the name only ever participates as "is this string the
// class under test?" (resolveClass, catch-type and assignability
// checks) — except when the self name shadows a platform class, which
// is why the env-resolvability bit above is part of the context.
//
// Soundness is by refinement: the key hashes at least every input the
// verifier reads, so key equality implies the verifier sees equal
// inputs up to the opaque self-name token and must produce the same
// verdict. Hashing more than a particular method touches (the whole
// pool rather than the entries it references) only splits keys that
// could have been shared — it costs memo hits, never correctness.
type MethodKey struct{ Lo, Hi uint64 }

const (
	vkFnvOffset = 14695981039346656037
	vkFnvPrime  = 1099511628211
	vkAltOffset = 0x9e3779b97f4a7c15
	// vkSelfMark replaces a masked self-name Utf8 entry; vkNilSlot marks
	// the nil slot after a long/double pool entry.
	vkSelfMark = 0x5e1fc0de5e1fc0de
	vkNilSlot  = 0x0f0f0f0f0f0f0f0f
)

func vkMix(h, x uint64) uint64 {
	h ^= x
	h *= vkFnvPrime
	h ^= h >> 29
	return h
}

// vkHash is the two-lane accumulator behind MethodKey, the same mixing
// discipline as coverage.Trace's Key.
type vkHash struct{ hi, lo uint64 }

func (h *vkHash) word(x uint64) {
	h.hi = vkMix(h.hi, x)
	h.lo = vkMix(h.lo, bits.RotateLeft64(x, 32))
}

// str hashes a length-prefixed string; the prefix keeps adjacent fields
// unambiguous.
func (h *vkHash) str(s string) {
	h.word(uint64(len(s)))
	var w uint64
	var n uint
	for i := 0; i < len(s); i++ {
		w |= uint64(s[i]) << n
		n += 8
		if n == 64 {
			h.word(w)
			w, n = 0, 0
		}
	}
	if n > 0 {
		h.word(w)
	}
}

func (h *vkHash) bytes(b []byte) {
	h.word(uint64(len(b)))
	var w uint64
	var n uint
	for _, c := range b {
		w |= uint64(c) << n
		n += 8
		if n == 64 {
			h.word(w)
			w, n = 0, 0
		}
	}
	if n > 0 {
		h.word(w)
	}
}

// VerifyKeyCtx is the per-class half of MethodKey derivation, computed
// once per (class, environment) and reused for every method. It is
// read-only after construction.
type VerifyKeyCtx struct {
	f    *classfile.File
	self string
	base vkHash
}

// NewVerifyKeyCtx hashes the class-level verification context of f
// against the library environment env.
func NewVerifyKeyCtx(f *classfile.File, env *rtlib.Env) *VerifyKeyCtx {
	self := f.Name()
	h := vkHash{hi: vkFnvOffset, lo: vkAltOffset}
	h.word(uint64(f.Major))
	h.word(uint64(f.AccessFlags))
	h.word(uint64(f.SuperClass))
	h.word(uint64(len(f.Interfaces)))
	for _, i := range f.Interfaces {
		h.word(uint64(i))
	}

	// Every pool slot in order. Content the verifier reads resolves
	// through here (class/member names, descriptors, ldc constants), so
	// hashing the whole pool refines any per-method reference set.
	h.word(uint64(f.Pool.Count()))
	for i := 1; i < f.Pool.Count(); i++ {
		c := f.Pool.Get(uint16(i))
		if c == nil {
			h.word(vkNilSlot)
			continue
		}
		h.word(uint64(c.Tag))
		switch c.Tag {
		case classfile.TagUtf8:
			if self != "" && c.Str == self {
				h.word(vkSelfMark)
			} else {
				h.str(c.Str)
			}
		case classfile.TagInteger:
			h.word(uint64(uint32(c.Int)))
		case classfile.TagFloat:
			h.word(uint64(math.Float32bits(c.Float)))
		case classfile.TagLong:
			h.word(uint64(c.Long))
		case classfile.TagDouble:
			h.word(math.Float64bits(c.Double))
		case classfile.TagMethodHandle:
			h.word(uint64(c.Kind)<<16 | uint64(c.Ref1))
		default:
			// Class/String/MethodType use Ref1; member refs, NameAndType
			// and InvokeDynamic use Ref1+Ref2. Hashing both is harmless
			// for the single-ref tags (Ref2 is zero there).
			h.word(uint64(c.Ref1)<<16 | uint64(c.Ref2))
		}
	}

	// The masked name makes renamed lineages collide; whether the name
	// shadows a platform class is the one renaming-visible behaviour
	// left (env lookups reached with the self name), so hash the
	// verbatim name exactly when it resolves.
	if _, ok := env.Lookup(self); ok && self != "" {
		h.str(self)
	} else {
		h.word(0)
	}
	return &VerifyKeyCtx{f: f, self: self, base: h}
}

// Key derives the method's verification key. ok is false when the
// method has no Code attribute (nothing to verify, nothing to memoise).
func (ctx *VerifyKeyCtx) Key(m *classfile.Member) (MethodKey, bool) {
	code := m.Code()
	if code == nil {
		return MethodKey{}, false
	}
	h := ctx.base
	h.word(uint64(m.AccessFlags))
	h.word(uint64(m.NameIndex)<<16 | uint64(m.DescIndex))
	h.word(uint64(code.MaxStack)<<16 | uint64(code.MaxLocals))
	h.bytes(code.Code)
	h.word(uint64(len(code.Handlers)))
	for _, hd := range code.Handlers {
		h.word(uint64(hd.StartPC)<<48 | uint64(hd.EndPC)<<32 |
			uint64(hd.HandlerPC)<<16 | uint64(hd.CatchType))
	}
	sm := []byte(nil)
	for _, a := range code.Attributes {
		if t, ok := a.(*classfile.StackMapTableAttr); ok {
			sm = t.Raw
			break
		}
	}
	h.bytes(sm)
	return MethodKey{Lo: h.lo, Hi: h.hi}, true
}

// SelfName returns the class name the context masks.
func (ctx *VerifyKeyCtx) SelfName() string { return ctx.self }
