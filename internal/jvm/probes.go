package jvm

import (
	"repro/internal/bytecode"
	"repro/internal/classfile"
	"repro/internal/coverage"
)

// probes is the package-level probe registry shared by every VM in the
// process. All static probe sites intern their IDs here once, at
// package initialisation, so a vm.st/vm.br on the hot path fires a
// plain integer index: no string concatenation, no map hashing, no
// allocation. Traces recorded by any VM in the process live in the same
// dense index space and are therefore directly comparable.
var probes = coverage.NewRegistry()

// ProbeRegistry exposes the package registry so callers can build
// recorders over it and resolve dense probe indices back to the stable
// human-readable probe-ID strings (reports, triage, tests).
func ProbeRegistry() *coverage.Registry { return probes }

// Per-opcode statement probes for the interpreter and the verifier
// simulation loop, and per-constant-pool-tag probes for the loader:
// the dynamic probe-ID families ("interp.op.iadd", "verify.op.goto",
// "load.cp.tag.Utf8", ...) are finite and byte-indexed, so they are
// pre-interned into flat tables.
var (
	opProbes       [256]coverage.StmtID
	verifyOpProbes [256]coverage.StmtID
	cpTagProbes    [256]coverage.StmtID
)

func init() {
	for i := 0; i < 256; i++ {
		m := bytecode.Opcode(i).Mnemonic()
		opProbes[i] = probes.Stmt("interp.op." + m)
		verifyOpProbes[i] = probes.Stmt("verify.op." + m)
		cpTagProbes[i] = probes.Stmt("load.cp.tag." + classfile.ConstTag(i).String())
	}
}

// Statement probes (vm.st sites).
var (
	pInitEnter                = probes.Stmt("init.enter")
	pInitLazyverifyfail       = probes.Stmt("init.lazyverifyfail")
	pInitOk                   = probes.Stmt("init.ok")
	pInterpCall               = probes.Stmt("interp.call")
	pInterpHandler            = probes.Stmt("interp.handler")
	pInvokeEnter              = probes.Stmt("invoke.enter")
	pInvokeLazyverifyfail     = probes.Stmt("invoke.lazyverifyfail")
	pInvokeOk                 = probes.Stmt("invoke.ok")
	pLinkEnter                = probes.Stmt("link.enter")
	pLinkIfaceEntry           = probes.Stmt("link.iface.entry")
	pLinkOk                   = probes.Stmt("link.ok")
	pLinkResolveEnter         = probes.Stmt("link.resolve.enter")
	pLinkResolveEntry         = probes.Stmt("link.resolve.entry")
	pLinkResolveOk            = probes.Stmt("link.resolve.ok")
	pLinkSuperIfaceobject     = probes.Stmt("link.super.ifaceobject")
	pLinkThrowsEntry          = probes.Stmt("link.throws.entry")
	pLoadClassflags           = probes.Stmt("load.classflags")
	pLoadClinitIgnored        = probes.Stmt("load.clinit.ignored")
	pLoadClinitLegacyrule     = probes.Stmt("load.clinit.legacyrule")
	pLoadClinitOrdinary       = probes.Stmt("load.clinit.ordinary")
	pLoadClinitSeen           = probes.Stmt("load.clinit.seen")
	pLoadCpEnter              = probes.Stmt("load.cp.enter")
	pLoadCpOk                 = probes.Stmt("load.cp.ok")
	pLoadEnter                = probes.Stmt("load.enter")
	pLoadFieldEntry           = probes.Stmt("load.field.entry")
	pLoadIfaceEntry           = probes.Stmt("load.iface.entry")
	pLoadInitSeen             = probes.Stmt("load.init.seen")
	pLoadMethodEntry          = probes.Stmt("load.method.entry")
	pLoadOk                   = probes.Stmt("load.ok")
	pLoadVersionTolerated     = probes.Stmt("load.version.tolerated")
	pParseEnter               = probes.Stmt("parse.enter")
	pVerifyEnter              = probes.Stmt("verify.enter")
	pVerifyHandler            = probes.Stmt("verify.handler")
	pVerifyInvokeInitobj      = probes.Stmt("verify.invoke.initobj")
	pVerifyJsrret             = probes.Stmt("verify.jsrret")
	pVerifyLdcBadtag          = probes.Stmt("verify.ldc.badtag")
	pVerifyLdcClass           = probes.Stmt("verify.ldc.class")
	pVerifyLdcDouble          = probes.Stmt("verify.ldc.double")
	pVerifyLdcFloat           = probes.Stmt("verify.ldc.float")
	pVerifyLdcInt             = probes.Stmt("verify.ldc.int")
	pVerifyLdcLong            = probes.Stmt("verify.ldc.long")
	pVerifyLdcString          = probes.Stmt("verify.ldc.string")
	pVerifyLocaloob           = probes.Stmt("verify.localoob")
	pVerifyLocalsoverflow     = probes.Stmt("verify.localsoverflow")
	pVerifyLocaltype          = probes.Stmt("verify.localtype")
	pVerifyMerge              = probes.Stmt("verify.merge")
	pVerifyMergeStackconflict = probes.Stmt("verify.merge.stackconflict")
	pVerifyMergeStackshape    = probes.Stmt("verify.merge.stackshape")
	pVerifyMergeUninit        = probes.Stmt("verify.merge.uninit")
	pVerifyOk                 = probes.Stmt("verify.ok")
	pVerifyOpUnknown          = probes.Stmt("verify.op.unknown")
	pVerifyRefmismatch        = probes.Stmt("verify.refmismatch")
	pVerifyRejected           = probes.Stmt("verify.rejected")
	pVerifyStackoverflow      = probes.Stmt("verify.stackoverflow")
	pVerifyStackunderflow     = probes.Stmt("verify.stackunderflow")
	pVerifyTypemismatch       = probes.Stmt("verify.typemismatch")
)

// Branch probes (vm.br sites): each fires its statement index plus one
// of its two branch edges.
var (
	bInitAccess                  = probes.Probe("init.access")
	bInitHasclinit               = probes.Probe("init.hasclinit")
	bInitThrew                   = probes.Probe("init.threw")
	bInvokeInterface             = probes.Probe("invoke.interface")
	bInvokeMaincode              = probes.Probe("invoke.maincode")
	bInvokeMainflags             = probes.Probe("invoke.mainflags")
	bInvokeMainfound             = probes.Probe("invoke.mainfound")
	bInvokeThrew                 = probes.Probe("invoke.threw")
	bLinkIfaceAccess             = probes.Probe("link.iface.access")
	bLinkIfaceMissing            = probes.Probe("link.iface.missing")
	bLinkIfaceNotinterface       = probes.Probe("link.iface.notinterface")
	bLinkIfaceSelf               = probes.Probe("link.iface.self")
	bLinkResolveAccess           = probes.Probe("link.resolve.access")
	bLinkResolveClassmissing     = probes.Probe("link.resolve.classmissing")
	bLinkResolveFieldfound       = probes.Probe("link.resolve.fieldfound")
	bLinkResolveMethodfound      = probes.Probe("link.resolve.methodfound")
	bLinkResolveShape            = probes.Probe("link.resolve.shape")
	bLinkSuperAccess             = probes.Probe("link.super.access")
	bLinkSuperFinal              = probes.Probe("link.super.final")
	bLinkSuperInterface          = probes.Probe("link.super.interface")
	bLinkSuperMissing            = probes.Probe("link.super.missing")
	bLinkSuperSelf               = probes.Probe("link.super.self")
	bLinkThrowsAccess            = probes.Probe("link.throws.access")
	bLinkThrowsCp                = probes.Probe("link.throws.cp")
	bLinkThrowsMissing           = probes.Probe("link.throws.missing")
	bLoadClassflagsAnnotation    = probes.Probe("load.classflags.annotation")
	bLoadClassflagsFinalabstract = probes.Probe("load.classflags.finalabstract")
	bLoadClassflagsIfaceabstract = probes.Probe("load.classflags.ifaceabstract")
	bLoadClassflagsIfacefinal    = probes.Probe("load.classflags.ifacefinal")
	bLoadClinitCode              = probes.Probe("load.clinit.code")
	bLoadClinitSe9rule           = probes.Probe("load.clinit.se9rule")
	bLoadCpClassname             = probes.Probe("load.cp.classname")
	bLoadCpFielddesc             = probes.Probe("load.cp.fielddesc")
	bLoadCpMembervalid           = probes.Probe("load.cp.membervalid")
	bLoadCpMethoddesc            = probes.Probe("load.cp.methoddesc")
	bLoadCpMhkind                = probes.Probe("load.cp.mhkind")
	bLoadCpNatvalid              = probes.Probe("load.cp.natvalid")
	bLoadCpRef1utf8              = probes.Probe("load.cp.ref1utf8")
	bLoadFieldCpvalid            = probes.Probe("load.field.cpvalid")
	bLoadFieldDesc               = probes.Probe("load.field.desc")
	bLoadFieldDup                = probes.Probe("load.field.dup")
	bLoadFieldFinalvolatile      = probes.Probe("load.field.finalvolatile")
	bLoadFieldIfacerules         = probes.Probe("load.field.ifacerules")
	bLoadFieldVis                = probes.Probe("load.field.vis")
	bLoadIfaceSuperobject        = probes.Probe("load.iface.superobject")
	bLoadIfaceValid              = probes.Probe("load.iface.valid")
	bLoadInitFlags               = probes.Probe("load.init.flags")
	bLoadInitOninterface         = probes.Probe("load.init.oninterface")
	bLoadInitReturns             = probes.Probe("load.init.returns")
	bLoadMethodAbstractcombo     = probes.Probe("load.method.abstractcombo")
	bLoadMethodCodeabsent        = probes.Probe("load.method.codeabsent")
	bLoadMethodCodepresent       = probes.Probe("load.method.codepresent")
	bLoadMethodCpvalid           = probes.Probe("load.method.cpvalid")
	bLoadMethodDesc              = probes.Probe("load.method.desc")
	bLoadMethodDup               = probes.Probe("load.method.dup")
	bLoadMethodIfacerules        = probes.Probe("load.method.ifacerules")
	bLoadMethodVis               = probes.Probe("load.method.vis")
	bLoadSuperValid              = probes.Probe("load.super.valid")
	bLoadSuperZero               = probes.Probe("load.super.zero")
	bLoadThisclassName           = probes.Probe("load.thisclass.name")
	bLoadThisclassValid          = probes.Probe("load.thisclass.valid")
	bLoadVersionMax              = probes.Probe("load.version.max")
	bLoadVersionMin              = probes.Probe("load.version.min")
	bLoadX                       = probes.Probe("load.x")
	bParseWellformed             = probes.Probe("parse.wellformed")
	bVerifyAnewarrayCp           = probes.Probe("verify.anewarray.cp")
	bVerifyAssignable            = probes.Probe("verify.assignable")
	bVerifyAthrowThrowable       = probes.Probe("verify.athrow.throwable")
	bVerifyBranchtarget          = probes.Probe("verify.branchtarget")
	bVerifyCheckcastCp           = probes.Probe("verify.checkcast.cp")
	bVerifyCodeempty             = probes.Probe("verify.codeempty")
	bVerifyDecodable             = probes.Probe("verify.decodable")
	bVerifyDesc                  = probes.Probe("verify.desc")
	bVerifyFalloff               = probes.Probe("verify.falloff")
	bVerifyFieldCp               = probes.Probe("verify.field.cp")
	bVerifyFieldDesc             = probes.Probe("verify.field.desc")
	bVerifyHandlerBounds         = probes.Probe("verify.handler.bounds")
	bVerifyHandlerCatchcp        = probes.Probe("verify.handler.catchcp")
	bVerifyHandlerCatchmissing   = probes.Probe("verify.handler.catchmissing")
	bVerifyHandlerCatchthrowable = probes.Probe("verify.handler.catchthrowable")
	bVerifyIndyCp                = probes.Probe("verify.indy.cp")
	bVerifyIndyDesc              = probes.Probe("verify.indy.desc")
	bVerifyIndyNat               = probes.Probe("verify.indy.nat")
	bVerifyInitUninitreturn      = probes.Probe("verify.init.uninitreturn")
	bVerifyInstanceofCp          = probes.Probe("verify.instanceof.cp")
	bVerifyInvokeCp              = probes.Probe("verify.invoke.cp")
	bVerifyInvokeDesc            = probes.Probe("verify.invoke.desc")
	bVerifyInvokeInitoninit      = probes.Probe("verify.invoke.initoninit")
	bVerifyInvokeUninitrecv      = probes.Probe("verify.invoke.uninitrecv")
	bVerifyLdcCp                 = probes.Probe("verify.ldc.cp")
	bVerifyMergeDepth            = probes.Probe("verify.merge.depth")
	bVerifyMultianewarrayDims    = probes.Probe("verify.multianewarray.dims")
	bVerifyNewCp                 = probes.Probe("verify.new.cp")
	bVerifyNewarrayType          = probes.Probe("verify.newarray.type")
	bVerifyReturnmatch           = probes.Probe("verify.returnmatch")
)
