package jvm

import (
	"testing"

	"repro/internal/classfile"
)

// loadOn runs f's bytes on a VM built from spec.
func loadOn(t *testing.T, spec Spec, f *classfile.File) Outcome {
	t.Helper()
	data, err := f.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	return New(spec).Run(data)
}

func wantLoadCFE(t *testing.T, o Outcome, what string) {
	t.Helper()
	if o.Phase != PhaseLoading || o.Error != ErrClassFormat {
		t.Errorf("%s: want ClassFormatError at loading, got %s", what, o)
	}
}

func TestLoadRejectsVersionBelowMinimum(t *testing.T) {
	f := helloClass("LOld")
	f.Major = 40
	o := loadOn(t, HotSpot8(), f)
	wantLoadCFE(t, o, "major 40")
}

func TestLoadRejectsDanglingThisClass(t *testing.T) {
	f := helloClass("LThis")
	f.ThisClass = 0xFFF0
	o := loadOn(t, HotSpot8(), f)
	wantLoadCFE(t, o, "bad this_class")
	// Even GIJ cannot work without a class identity.
	o = loadOn(t, GIJ(), f)
	wantLoadCFE(t, o, "bad this_class on GIJ")
}

func TestLoadRejectsMissingSuperOnNonObject(t *testing.T) {
	f := helloClass("LNoSuper")
	f.SuperClass = 0
	o := loadOn(t, HotSpot8(), f)
	wantLoadCFE(t, o, "no superclass")
}

func TestLoadRejectsDanglingInterfaceIndex(t *testing.T) {
	f := helloClass("LIfaceIdx")
	f.Interfaces = append(f.Interfaces, 0xFFF0)
	o := loadOn(t, HotSpot8(), f)
	wantLoadCFE(t, o, "bad interface index")
}

func TestLoadClassFlagRules(t *testing.T) {
	// final+abstract
	f := helloClass("LFlags1")
	f.AccessFlags |= classfile.AccFinal | classfile.AccAbstract
	wantLoadCFE(t, loadOn(t, HotSpot8(), f), "final abstract")

	// interface without abstract
	f2 := classfile.New("LFlags2")
	f2.AccessFlags = classfile.AccPublic | classfile.AccInterface
	wantLoadCFE(t, loadOn(t, HotSpot8(), f2), "interface not abstract")

	// final interface
	f3 := classfile.New("LFlags3")
	f3.AccessFlags = classfile.AccPublic | classfile.AccInterface | classfile.AccAbstract | classfile.AccFinal
	wantLoadCFE(t, loadOn(t, HotSpot8(), f3), "final interface")

	// annotation without interface
	f4 := helloClass("LFlags4")
	f4.AccessFlags |= classfile.AccAnnotation
	wantLoadCFE(t, loadOn(t, HotSpot8(), f4), "annotation class")

	// GIJ skips all of these.
	for _, f := range []*classfile.File{f, f4} {
		if o := loadOn(t, GIJ(), f); o.Phase == PhaseLoading {
			t.Errorf("GIJ should not format-check class flags, got %s", o)
		}
	}
}

func TestLoadFieldRules(t *testing.T) {
	// conflicting visibility
	f := helloClass("LField1")
	f.AddField(classfile.AccPublic|classfile.AccPrivate, "x", "I")
	wantLoadCFE(t, loadOn(t, HotSpot8(), f), "field visibility")

	// final volatile
	f2 := helloClass("LField2")
	f2.AddField(classfile.AccPublic|classfile.AccFinal|classfile.AccVolatile, "y", "I")
	wantLoadCFE(t, loadOn(t, HotSpot8(), f2), "final volatile")

	// malformed descriptor
	f3 := helloClass("LField3")
	f3.AddField(classfile.AccPublic, "z", "Q")
	wantLoadCFE(t, loadOn(t, HotSpot8(), f3), "bad descriptor")
}

func TestLoadMethodRules(t *testing.T) {
	// abstract + private
	f := helloClass("LMeth1")
	f.AddMethod(classfile.AccPrivate|classfile.AccAbstract, "m", "()V")
	wantLoadCFE(t, loadOn(t, HotSpot8(), f), "abstract private")

	// abstract + final
	f2 := helloClass("LMeth2")
	f2.AddMethod(classfile.AccPublic|classfile.AccAbstract|classfile.AccFinal, "m", "()V")
	wantLoadCFE(t, loadOn(t, HotSpot8(), f2), "abstract final")

	// abstract + strict
	f3 := helloClass("LMeth3")
	f3.AddMethod(classfile.AccPublic|classfile.AccAbstract|classfile.AccStrict, "m", "()V")
	wantLoadCFE(t, loadOn(t, HotSpot8(), f3), "abstract strictfp")

	// malformed method descriptor
	f4 := helloClass("LMeth4")
	f4.AddMethod(classfile.AccPublic|classfile.AccAbstract, "m", "(V)I")
	wantLoadCFE(t, loadOn(t, HotSpot8(), f4), "bad method descriptor")

	// duplicate methods
	f5 := helloClass("LMeth5")
	f5.AddMethod(classfile.AccPublic|classfile.AccAbstract, "m", "()V")
	f5.AddMethod(classfile.AccPublic|classfile.AccAbstract, "m", "()V")
	wantLoadCFE(t, loadOn(t, HotSpot8(), f5), "duplicate methods")
}

func TestLoadCodePresenceRules(t *testing.T) {
	// abstract method with code
	f := helloClass("LCode1")
	m := f.AddMethod(classfile.AccPublic|classfile.AccAbstract, "m", "()V")
	cb := classfile.NewCodeBuilder(f.Pool)
	cb.Op(0xb1)
	m.Attributes = append(m.Attributes, cb.Build())
	wantLoadCFE(t, loadOn(t, HotSpot8(), f), "abstract with code")

	// concrete method without code
	f2 := helloClass("LCode2")
	f2.AddMethod(classfile.AccPublic, "m", "()V")
	wantLoadCFE(t, loadOn(t, HotSpot8(), f2), "concrete without code")

	// native method with code
	f3 := helloClass("LCode3")
	m3 := f3.AddMethod(classfile.AccPublic|classfile.AccNative, "m", "()V")
	cb3 := classfile.NewCodeBuilder(f3.Pool)
	cb3.Op(0xb1)
	m3.Attributes = append(m3.Attributes, cb3.Build())
	wantLoadCFE(t, loadOn(t, HotSpot8(), f3), "native with code")

	// GIJ tolerates all three (lazy leniency).
	for _, ff := range []*classfile.File{f, f2, f3} {
		if o := loadOn(t, GIJ(), ff); o.Phase == PhaseLoading {
			t.Errorf("GIJ should not check code presence, got %s", o)
		}
	}
}

func TestLoadConstantPoolCrossRefs(t *testing.T) {
	// A Class entry pointing at a non-Utf8 slot.
	f := helloClass("LCP1")
	intIdx := f.Pool.AddInteger(7)
	f.Pool.Entries = append(f.Pool.Entries, &classfile.Constant{Tag: classfile.TagClass, Ref1: intIdx})
	wantLoadCFE(t, loadOn(t, HotSpot8(), f), "class->int")
	if o := loadOn(t, GIJ(), f); o.Phase == PhaseLoading {
		t.Errorf("GIJ skips strict pool checking, got %s", o)
	}

	// A NameAndType with a dangling reference.
	f2 := helloClass("LCP2")
	f2.Pool.Entries = append(f2.Pool.Entries, &classfile.Constant{Tag: classfile.TagNameAndType, Ref1: 0xFFF0, Ref2: 1})
	wantLoadCFE(t, loadOn(t, HotSpot8(), f2), "dangling NameAndType")

	// A MethodHandle with an invalid kind.
	f3 := helloClass("LCP3")
	f3.Pool.Entries = append(f3.Pool.Entries, &classfile.Constant{Tag: classfile.TagMethodHandle, Kind: 77, Ref1: 1})
	wantLoadCFE(t, loadOn(t, HotSpot8(), f3), "bad MethodHandle kind")
}

func TestLoadIllegalClassName(t *testing.T) {
	f := helloClass("L;Bad")
	o := loadOn(t, HotSpot8(), f)
	wantLoadCFE(t, o, "name with semicolon")
	if o := loadOn(t, GIJ(), f); o.Phase == PhaseLoading {
		t.Errorf("GIJ skips name validity, got %s", o)
	}
}

// TestPolicyMatrixMatchesTable3 pins the knobs that define each VM's
// identity, so a refactor cannot silently flatten the behavioural
// differences the whole evaluation rests on.
func TestPolicyMatrixMatchesTable3(t *testing.T) {
	hs7, hs8, hs9, j9, gij := HotSpot7(), HotSpot8(), HotSpot9(), J9(), GIJ()

	// Version ceilings per release.
	if hs7.Policy.MaxMajorVersion != 51 || hs8.Policy.MaxMajorVersion != 52 || hs9.Policy.MaxMajorVersion != 53 {
		t.Error("HotSpot version ceilings wrong")
	}
	if !gij.Policy.AcceptNewerVersions {
		t.Error("GIJ must process newer-version classfiles (Problem 4)")
	}

	// Problem 1: only J9 applies the name-based <clinit> rule.
	if j9.Policy.ClinitRule != ClinitAlwaysInitializer {
		t.Error("J9 clinit rule")
	}
	for _, s := range []Spec{hs7, hs8, hs9} {
		if s.Policy.ClinitRule != ClinitOrdinaryIfNonStatic {
			t.Errorf("%s clinit rule", s.Name)
		}
	}

	// Problem 2: HotSpot verifies eagerly; J9 and GIJ on invocation.
	for _, s := range []Spec{hs7, hs8, hs9} {
		if !s.Policy.EagerVerify {
			t.Errorf("%s must verify eagerly", s.Name)
		}
	}
	if j9.Policy.EagerVerify || gij.Policy.EagerVerify {
		t.Error("J9/GIJ must verify lazily")
	}
	if !gij.Policy.VerifyUninitMerge || !gij.Policy.VerifyRefAssignability {
		t.Error("GIJ's strict dialect knobs")
	}
	if !j9.Policy.VerifyStrictStackShape {
		t.Error("J9 stack-shape strictness")
	}

	// Problem 3: only HotSpot checks throws clauses.
	for _, s := range []Spec{hs7, hs8, hs9} {
		if !s.Policy.CheckThrowsClause {
			t.Errorf("%s must check throws clauses", s.Name)
		}
	}
	if j9.Policy.CheckThrowsClause || gij.Policy.CheckThrowsClause {
		t.Error("J9/GIJ must not check throws clauses")
	}

	// Problem 4: GIJ's leniency block.
	p := gij.Policy
	if p.CheckInitSignature || p.CheckDuplicateFields || p.CheckInterfaceMemberRules ||
		p.CheckInterfaceSuperObject || p.CheckClassFlags || p.CheckMemberFlags ||
		p.CheckSuperNotFinal || p.EagerResolution || p.RequireStaticMain {
		t.Error("GIJ leniency knobs flipped")
	}
	if !p.AllowInterfaceMain {
		t.Error("GIJ must run interface mains")
	}

	// HotSpot 9 modules.
	if !hs9.Policy.CheckResolvedAccess || !hs9.Policy.InitStrictAccess {
		t.Error("HotSpot 9 module knobs")
	}
	if hs7.Policy.CheckResolvedAccess || hs8.Policy.CheckResolvedAccess {
		t.Error("HotSpot 7/8 must not enforce module access")
	}

	// Environments per Table 3.
	wantRel := map[string]string{
		"HotSpot-Java7": "JRE7", "HotSpot-Java8": "JRE8", "HotSpot-Java9": "JRE9",
		"J9-SDK8": "JRE8", "GIJ-5.1.0": "GNU-Classpath",
	}
	for _, s := range []Spec{hs7, hs8, hs9, j9, gij} {
		if s.Release.String() != wantRel[s.Name] {
			t.Errorf("%s bound to %s, want %s", s.Name, s.Release, wantRel[s.Name])
		}
	}
}
