package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/coverage"
	"repro/internal/difftest"
	"repro/internal/jimple"
	"repro/internal/seedgen"
)

// testConfig is a small bounded daemon: 2 shards × 2 epochs.
func testConfig(t *testing.T, workers int) Config {
	t.Helper()
	return Config{
		DataDir:    t.TempDir(),
		Shards:     2,
		Workers:    workers,
		Algorithm:  campaign.Classfuzz,
		Criterion:  coverage.STBR,
		SeedCount:  12,
		Seed:       5,
		Iterations: 60,
		Epochs:     2,
		QueueCap:   4,
	}
}

// runToCompletion starts a manager, waits for the epoch budget and
// stops it, returning the folded session.
func runToCompletion(t *testing.T, cfg Config) (*Session, *Manager) {
	t.Helper()
	m := New(cfg)
	if err := m.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	m.Wait()
	if err := m.Stop(context.Background()); err != nil {
		t.Fatalf("stop: %v", err)
	}
	return m.Session(), m
}

// sessionSummary reduces a session to comparable facts: per fold key,
// the accepted test names and bytes plus the draw log length.
type foldSummary struct {
	TestNames []string
	TestBytes [][]byte
	Draws     int
	GenCount  int
}

func summarize(s *Session) map[string]foldSummary {
	out := map[string]foldSummary{}
	for key, res := range s.Campaigns {
		var fs foldSummary
		for _, g := range res.Test {
			fs.TestNames = append(fs.TestNames, g.Name)
			fs.TestBytes = append(fs.TestBytes, g.Data)
		}
		fs.Draws = len(res.Draws)
		fs.GenCount = len(res.Gen)
		out[key] = fs
	}
	return out
}

// discSet reduces the discrepancy log to its deterministic identity
// (IDs are arrival-ordered and may differ between runs).
func discSet(ds []Discrepancy) []string {
	keys := make([]string, 0, len(ds))
	for _, d := range ds {
		keys = append(keys, fmt.Sprintf("s%d/e%d/%s/%s", d.Shard, d.Epoch, d.Class, d.Vector))
	}
	sort.Strings(keys)
	return keys
}

// unionSummaries merges per-run fold summaries. An epoch folds in
// exactly one daemon lifetime (the frontier advances with the fold),
// so overlapping keys are a protocol violation.
func unionSummaries(t *testing.T, runs ...map[string]foldSummary) map[string]foldSummary {
	t.Helper()
	out := map[string]foldSummary{}
	for _, run := range runs {
		for key, fs := range run {
			if _, dup := out[key]; dup {
				t.Fatalf("epoch %s folded in two daemon lifetimes", key)
			}
			out[key] = fs
		}
	}
	return out
}

// TestDaemonKillResumeDeterminism is the service-level acceptance
// test: a daemon stopped mid-flight (graceful drain writes shard
// checkpoints) and restarted on the same data directory must produce,
// across both lifetimes, the exact folds an uninterrupted daemon
// produces — per-epoch accepted suites byte-identical, discrepancy
// sets equal — at worker counts 1 and 4.
func TestDaemonKillResumeDeterminism(t *testing.T) {
	for _, workers := range []int{1, 4} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			t.Parallel()
			want, wm := runToCompletion(t, testConfig(t, workers))

			// Interrupted run: start, let some work happen, drain with
			// checkpoints, then restart the same data directory and run
			// to completion.
			cfg := testConfig(t, workers)
			m1 := New(cfg)
			if err := m1.Start(); err != nil {
				t.Fatalf("start: %v", err)
			}
			time.Sleep(30 * time.Millisecond)
			if err := m1.Stop(context.Background()); err != nil {
				t.Fatalf("drain: %v", err)
			}

			m2 := New(cfg)
			if err := m2.Start(); err != nil {
				t.Fatalf("restart: %v", err)
			}
			m2.Wait()
			if err := m2.Stop(context.Background()); err != nil {
				t.Fatalf("final stop: %v", err)
			}

			got := unionSummaries(t, summarize(m1.Session()), summarize(m2.Session()))
			if !reflect.DeepEqual(got, summarize(want)) {
				t.Fatal("interrupted+resumed folds diverge from the uninterrupted run")
			}
			// The discrepancy log persists in state.json, so the final
			// daemon's view covers both lifetimes.
			if !reflect.DeepEqual(discSet(m2.Discrepancies(0)), discSet(wm.Discrepancies(0))) {
				t.Fatal("resumed daemon discrepancy set diverges from uninterrupted run")
			}
			// The restart must resume whatever the drain checkpointed.
			if w := m1.Session().Telemetry.Snapshot().Counter(MetricCheckpointsWritten); w > 0 {
				if r := m2.Session().Telemetry.Snapshot().Counter(MetricCheckpointsRestored); r == 0 {
					t.Fatalf("drain wrote %d checkpoints but restart restored none", w)
				}
			}
		})
	}
}

// TestDaemonStaleCheckpointIgnored: checkpoints whose epoch already
// folded (CheckpointNow raced the fold, or a kill landed between the
// fold's state write and the checkpoint cleanup) must be ignored on
// restart, not re-folded — the union across lifetimes still equals
// the uninterrupted run.
func TestDaemonStaleCheckpointIgnored(t *testing.T) {
	want, _ := runToCompletion(t, testConfig(t, 2))

	cfg := testConfig(t, 2)
	m1 := New(cfg)
	if err := m1.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	time.Sleep(20 * time.Millisecond)
	m1.CheckpointNow() // mid-flight snapshots that will go stale
	m1.Wait()          // every epoch folds; the snapshots are now relics
	if err := m1.Stop(context.Background()); err != nil {
		t.Fatalf("stop: %v", err)
	}

	m2 := New(cfg)
	if err := m2.Start(); err != nil {
		t.Fatalf("restart: %v", err)
	}
	m2.Wait()
	if err := m2.Stop(context.Background()); err != nil {
		t.Fatalf("final stop: %v", err)
	}
	if n := len(m2.Session().Campaigns); n != 0 {
		t.Fatalf("restart re-folded %d epochs of a completed daemon", n)
	}
	got := unionSummaries(t, summarize(m1.Session()), summarize(m2.Session()))
	if !reflect.DeepEqual(got, summarize(want)) {
		t.Fatal("completed run's folds diverge from the uninterrupted run")
	}
}

// TestSeedSubmissionAPI drives the corpus API end to end: a valid
// classfile is adopted and persisted, malformed bytes get 400, a held
// intake queue overflows into 429, and released seeds drain.
func TestSeedSubmissionAPI(t *testing.T) {
	cfg := testConfig(t, 1)
	cfg.Addr = "127.0.0.1:0"
	cfg.Epochs = 0 // stay alive until stopped
	cfg.Iterations = 2000
	cfg.QueueCap = 2
	m := New(cfg)
	gate := make(chan struct{})
	m.intakeGate = gate
	if err := m.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	defer m.Stop(context.Background())
	base := "http://" + m.Addr()

	// A liftable classfile to submit.
	seedBytes, err := seedgen.GenerateFiles(seedgen.DefaultOptions(1, 99))
	if err != nil {
		t.Fatal(err)
	}
	post := func(body []byte) int {
		resp, err := http.Post(base+"/api/seeds", "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("post: %v", err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	if code := post([]byte("\xca\xfe\xba\xbenope")); code != http.StatusBadRequest {
		t.Fatalf("malformed submission: got %d, want 400", code)
	}
	// With the intake worker gated, cap+1 submissions fill the queue
	// (the worker may hold one extra in hand) and the next must 429.
	overflowed := false
	for i := 0; i < cfg.QueueCap+2; i++ {
		if post(seedBytes[0]) == http.StatusTooManyRequests {
			overflowed = true
			break
		}
	}
	if !overflowed {
		t.Fatalf("queue of cap %d never answered 429 while intake was held", cfg.QueueCap)
	}
	close(gate) // release the intake worker

	deadline := time.After(5 * time.Second)
	for m.submittedCount() == 0 {
		select {
		case <-deadline:
			t.Fatal("released queue never drained into the corpus")
		case <-time.After(5 * time.Millisecond):
		}
	}
	if _, err := os.Stat(filepath.Join(m.corpusDir(), "sub00000.class")); err != nil {
		t.Fatalf("adopted seed not persisted: %v", err)
	}

	// Status reflects the adoption; discrepancy listing answers.
	resp, err := http.Get(base + "/api/status")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("status: %v (%v)", err, resp)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	// The API-triggered checkpoint writes shard snapshots once it lands
	// mid-epoch. Epochs cycle quickly at this scale, so a request can
	// catch every shard between epochs (nothing running to snapshot) —
	// retry until one lands.
	ckptDeadline := time.After(10 * time.Second)
	for {
		cresp, err := http.Post(base+"/api/checkpoint", "", nil)
		if err != nil || cresp.StatusCode != http.StatusOK {
			t.Fatalf("checkpoint: %v (%v)", err, cresp)
		}
		io.Copy(io.Discard, cresp.Body)
		cresp.Body.Close()
		if m.Session().Telemetry.Snapshot().Counter(MetricCheckpointsWritten) > 0 {
			break
		}
		select {
		case <-ckptDeadline:
			t.Fatal("API checkpoint never wrote a shard snapshot")
		case <-time.After(20 * time.Millisecond):
		}
	}

	// Graceful drain: intake 503s, the listener closes, restart lifts
	// the adopted seed.
	if err := m.Stop(context.Background()); err != nil {
		t.Fatalf("stop: %v", err)
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("listener still answering after Stop")
	}
	// Drain checkpoints every mid-epoch shard; a shard caught between
	// epochs leaves nothing to restore, so pin restore against what the
	// drain actually left on disk.
	surviving := 0
	for i := 0; i < cfg.Shards; i++ {
		if _, err := os.Stat(m.checkpointPath(i)); err == nil {
			surviving++
		}
	}

	m2 := New(cfg)
	if err := m2.Start(); err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer m2.Stop(context.Background())
	if got := m2.submittedCount(); got < 1 {
		t.Fatalf("restart lifted %d submitted seeds, want >= 1", got)
	}
	// Resume happens asynchronously in the shard loops; wait for the
	// restored counter rather than racing it.
	if surviving > 0 {
		restoreDeadline := time.After(10 * time.Second)
		for m2.Session().Telemetry.Snapshot().Counter(MetricCheckpointsRestored) == 0 {
			select {
			case <-restoreDeadline:
				t.Fatal("restart restored no checkpoints despite drain-time snapshots")
			case <-time.After(10 * time.Millisecond):
			}
		}
	}
}

// TestSeedStrategyService drives a clustered daemon end to end: the
// intake API classifies a submitted seed (fingerprint, trace key,
// cluster), /api/status carries the strategy and the per-cluster seed
// table, and the data directory refuses a restart under a different
// strategy.
func TestSeedStrategyService(t *testing.T) {
	cfg := testConfig(t, 1)
	cfg.Addr = "127.0.0.1:0"
	cfg.SeedStrategy = "clustered"
	cfg.Epochs = 0 // stay alive until stopped
	cfg.Iterations = 2000
	m := New(cfg)
	if err := m.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	defer m.Stop(context.Background())
	base := "http://" + m.Addr()

	seedBytes, err := seedgen.GenerateFiles(seedgen.DefaultOptions(1, 99))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/api/seeds", "application/octet-stream", bytes.NewReader(seedBytes[0]))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submission: got %d (%s), want 202", resp.StatusCode, body)
	}
	var sub struct {
		Status      string `json:"status"`
		Fingerprint string `json:"fingerprint"`
		TraceKey    string `json:"trace_key"`
		Cluster     *int   `json:"cluster"`
	}
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatalf("submission body %q: %v", body, err)
	}
	if sub.Fingerprint == "" || sub.TraceKey == "" || sub.Cluster == nil {
		t.Fatalf("submission response lacks classification: %s", body)
	}
	if *sub.Cluster < 0 {
		t.Fatalf("submitted seed assigned cluster %d", *sub.Cluster)
	}

	sresp, err := http.Get(base + "/api/status")
	if err != nil || sresp.StatusCode != http.StatusOK {
		t.Fatalf("status: %v (%v)", err, sresp)
	}
	var st Status
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatalf("status decode: %v", err)
	}
	sresp.Body.Close()
	if st.SeedStrategy != "clustered" {
		t.Fatalf("status strategy %q, want clustered", st.SeedStrategy)
	}
	if len(st.SeedClusters) == 0 {
		t.Fatal("status carries no seed-cluster table under the clustered strategy")
	}
	seedsTotal := 0
	for _, row := range st.SeedClusters {
		seedsTotal += row.Seeds
	}
	if seedsTotal < cfg.SeedCount {
		t.Fatalf("cluster table covers %d seeds, corpus has at least %d", seedsTotal, cfg.SeedCount)
	}
	if *sub.Cluster >= len(st.SeedClusters) {
		t.Fatalf("submission cluster %d outside table of %d", *sub.Cluster, len(st.SeedClusters))
	}

	if err := m.Stop(context.Background()); err != nil {
		t.Fatalf("stop: %v", err)
	}
	flipped := cfg
	flipped.SeedStrategy = "yield"
	m2 := New(flipped)
	if err := m2.Start(); err == nil {
		m2.Stop(context.Background())
		t.Fatal("restart under a different seed strategy was accepted")
	}
}

// TestSubmittedSeedsEnterEpochs pins the corpus-pinning rule: an
// epoch started after an adoption includes the submitted seed, and the
// resulting campaigns remain valid folds.
func TestSubmittedSeedsEnterEpochs(t *testing.T) {
	cfg := testConfig(t, 1)
	cfg.Shards = 1
	cfg.Epochs = 2
	cfg.Iterations = 40

	// Pre-seed the data dir with one submission by writing through a
	// live manager's queue before the first epoch can finish.
	m := New(cfg)
	if err := m.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	files, err := seedgen.GenerateFiles(seedgen.DefaultOptions(1, 42))
	if err != nil {
		t.Fatal(err)
	}
	m.queue <- files[0]
	m.Wait()
	if err := m.Stop(context.Background()); err != nil {
		t.Fatalf("stop: %v", err)
	}

	for key, res := range m.Session().Campaigns {
		if n := len(res.Draws); n != cfg.Iterations {
			t.Fatalf("%s: %d draws, want %d", key, n, cfg.Iterations)
		}
	}
	if subs := m.submittedCount(); subs != 1 {
		t.Fatalf("adopted %d seeds, want 1", subs)
	}

	// A restart on the same data dir lifts the submission, and an
	// epoch pinning one submitted seed builds its corpus as
	// base + submitted, in arrival order.
	m2 := New(cfg)
	if err := m2.Start(); err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer m2.Stop(context.Background())
	var seeds []*jimple.Class = m2.corpusFor(1)
	if want := cfg.SeedCount + 1; len(seeds) != want {
		t.Fatalf("corpusFor(1) = %d seeds, want %d", len(seeds), want)
	}
}

// TestStateValidation: a data directory refuses a mismatched config.
func TestStateValidation(t *testing.T) {
	cfg := testConfig(t, 1)
	cfg.Shards = 1
	cfg.Epochs = 1
	cfg.Iterations = 20
	runToCompletion(t, cfg)

	bad := cfg
	bad.Seed = 6
	m := New(bad)
	if err := m.Start(); err == nil {
		m.Stop(context.Background())
		t.Fatal("mismatched seed accepted against existing data dir")
	}

	bad = cfg
	bad.Iterations = 21
	m = New(bad)
	if err := m.Start(); err == nil {
		m.Stop(context.Background())
		t.Fatal("mismatched iteration budget accepted against existing data dir")
	}
}

// Two daemons must never share a data directory: each rewrites
// state.json from its own in-memory view and would silently clobber
// the other's corpus and frontiers. The flock guards it, and kernel
// release-on-exit means a crashed daemon never wedges the directory.
func TestDataDirLock(t *testing.T) {
	cfg := testConfig(t, 1)
	cfg.Epochs = 0 // run until stopped
	m1 := New(cfg)
	if err := m1.Start(); err != nil {
		t.Fatal(err)
	}
	m2 := New(cfg)
	if err := m2.Start(); err == nil {
		m2.Stop(context.Background())
		m1.Stop(context.Background())
		t.Fatal("second daemon acquired an already-locked data dir")
	} else if !strings.Contains(err.Error(), "locked") {
		t.Fatalf("want lock error, got: %v", err)
	}
	if err := m1.Stop(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Stop released the lock; the directory is usable again.
	m3 := New(cfg)
	if err := m3.Start(); err != nil {
		t.Fatalf("restart after Stop: %v", err)
	}
	if err := m3.Stop(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestMemoPersistsMethodVerdicts pins the daemon's memo.json contract
// for the method-verification memo: a completed run persists
// verify_outcomes alongside the whole-class outcomes, and a restart on
// the same data directory adopts every verdict and re-persists the
// file byte-identically (export order is canonical, import is
// lossless).
func TestMemoPersistsMethodVerdicts(t *testing.T) {
	cfg := testConfig(t, 2)
	runToCompletion(t, cfg)

	memoPath := filepath.Join(cfg.DataDir, "memo.json")
	first, err := os.ReadFile(memoPath)
	if err != nil {
		t.Fatalf("memo.json missing after run: %v", err)
	}
	var exp difftest.MemoExport
	if err := json.Unmarshal(first, &exp); err != nil {
		t.Fatal(err)
	}
	if len(exp.Verify) == 0 {
		t.Fatal("memo.json carries no method verdicts")
	}

	// Restart on the exhausted directory: loadMemo adopts, no epochs
	// run, Stop re-persists.
	m2 := New(cfg)
	if err := m2.Start(); err != nil {
		t.Fatal(err)
	}
	m2.Wait()
	if got := m2.Session().VerifyMemo.Len(); got != len(exp.Verify) {
		t.Fatalf("restart adopted %d method verdicts, persisted %d", got, len(exp.Verify))
	}
	if err := m2.Stop(context.Background()); err != nil {
		t.Fatal(err)
	}
	second, err := os.ReadFile(memoPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("memo.json not byte-identical across an idle restart")
	}
}
