// Package service is the campaign-as-a-service layer: a long-running
// daemon (cmd/classfuzzd) hosting N sharded fuzzing campaigns over the
// staged engine, a coordinator folding shard results into one session
// view, a versioned checkpoint/resume protocol that survives kill -9
// with byte-identical results, and an HTTP corpus/work API with
// backpressure and graceful drain. See DESIGN.md ("Service layer").
package service

import (
	"sync"

	"repro/internal/campaign"
	"repro/internal/coverage"
	"repro/internal/difftest"
	"repro/internal/jvm"
	"repro/internal/telemetry"
)

// Metric names the service layer reports into the session registry.
// cmd/report's Service section and the dashboard render these.
const (
	// MetricCheckpointsWritten counts shard checkpoints persisted to
	// disk (periodic timer, API trigger, or drain-on-shutdown).
	MetricCheckpointsWritten = "service.checkpoints.written"
	// MetricCheckpointsRestored counts shard campaigns resumed from a
	// checkpoint at daemon startup.
	MetricCheckpointsRestored = "service.checkpoints.restored"
	// MetricQueueDepth gauges the seed-intake queue's current depth.
	MetricQueueDepth = "service.queue.depth"
	// MetricQueueHighWater gauges the deepest the intake queue has been.
	MetricQueueHighWater = "service.queue.hwm"
	// MetricSeedsAccepted counts submitted classfiles adopted into the
	// corpus; MetricSeedsRejected counts malformed submissions and
	// MetricSeedsThrottled counts 429s from a full queue.
	MetricSeedsAccepted  = "service.seeds.accepted"
	MetricSeedsRejected  = "service.seeds.rejected"
	MetricSeedsThrottled = "service.seeds.throttled"
	// MetricShardMerges counts shard epoch results folded into the
	// session; MetricEpochsCompleted is its alias-by-intent (merges
	// happen exactly once per completed epoch).
	MetricShardMerges     = "service.shard.merges"
	MetricEpochsCompleted = "service.epochs.completed"
	// MetricDiscrepancies gauges the discrepancy log's length.
	MetricDiscrepancies = "service.discrepancies"
)

// Session aggregates campaign results produced by independent runs —
// the daemon's shard epochs, or the experiment driver's six campaigns
// — into one view: the folded results map, a shared difftest outcome
// memo (a class executes once per VM across the whole session), a
// telemetry roll-up, and the word-OR of every folded campaign's
// coverage trace. Fold is safe for concurrent use; the exported fields
// are for direct reading once the producing goroutines have finished.
type Session struct {
	mu sync.Mutex

	// Campaigns maps a fold key (e.g. "shard0/epoch2" or
	// "classfuzz[stbr]") to that campaign's result.
	Campaigns map[string]*campaign.Result
	// Memo is the outcome memo shared by every differential evaluation
	// the session performs.
	Memo *difftest.OutcomeMemo
	// VerifyMemo is the method-granular verification memo shared by
	// every session Runner (below Memo: renamed-but-identical lineage
	// methods hit it even when the whole-class memo misses). It
	// persists into memo.json next to the outcome memo.
	VerifyMemo *jvm.VerifyMemo
	// Telemetry is the session-wide metrics roll-up. Campaigns run
	// against private registries which Fold merges in as they finish,
	// so campaign.* counters here are totals across all folds; the
	// shared memo and every session Runner report here directly.
	Telemetry *telemetry.Registry

	cov    *coverage.Trace
	merges int
}

// NewSession builds an empty session. A nil reg gets a fresh registry;
// passing one lets a live /metrics.json endpoint watch the session as
// it fills (observe-only either way).
func NewSession(reg *telemetry.Registry) *Session {
	if reg == nil {
		reg = telemetry.New()
	}
	s := &Session{
		Campaigns:  map[string]*campaign.Result{},
		Memo:       difftest.NewOutcomeMemo(),
		VerifyMemo: jvm.NewVerifyMemo(),
		Telemetry:  reg,
		cov:        coverage.NewTrace(),
	}
	s.Memo.UseTelemetry(reg)
	s.VerifyMemo.UseTelemetry(reg)
	return s
}

// Fold absorbs one finished campaign: the result is recorded under
// key, the campaign's private telemetry registry (may be nil) merges
// into the roll-up, and the campaign's merged coverage trace — when
// the algorithm produces one — ORs into the session trace. All shards
// share the process-global probe registry, so trace words are
// index-compatible across folds.
func (s *Session) Fold(key string, res *campaign.Result, reg *telemetry.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.Campaigns[key] = res
	if reg != nil {
		s.Telemetry.Merge(reg)
	}
	if res.Coverage != nil {
		s.cov = coverage.Merge(s.cov, res.Coverage)
	}
	s.merges++
}

// Runner builds a standard five-VM differential runner wired to the
// session's shared outcome memo and metrics roll-up.
func (s *Session) Runner() *difftest.Runner {
	r := difftest.NewStandardRunner()
	r.Memo = s.Memo
	r.VerifyMemo = s.VerifyMemo
	jvm.ShareVerifyMemo(r.VMs, s.VerifyMemo)
	r.UseTelemetry(s.Telemetry)
	return r
}

// Coverage returns the statistics of the merged session trace.
func (s *Session) Coverage() coverage.Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cov.Stats()
}

// Merges returns how many campaign results have been folded in.
func (s *Session) Merges() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.merges
}
