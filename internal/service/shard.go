package service

import (
	"sync"
	"sync/atomic"

	"repro/internal/campaign"
	"repro/internal/telemetry"
)

// shard is one campaign worker slot: it runs epochs of the staged
// engine back to back, each epoch a full campaign over the corpus as
// pinned at that epoch's start, under a per-shard-per-epoch derived
// seed. The manager talks to a running epoch through its Control
// (snapshot/stop at coordinator boundaries) and reads live counters
// the shard's observer maintains.
type shard struct {
	id int
	m  *Manager

	mu sync.Mutex
	// ctrl/reg are non-nil exactly while an epoch's engine is running;
	// epoch and submittedUsed describe that epoch (epoch advances only
	// after ctrl is cleared, so a consistent triple is read under mu).
	ctrl          *campaign.Control
	reg           *telemetry.Registry
	epoch         int
	submittedUsed int
	state         string
	resumed       bool

	// Live counters, written from the engine's sequential draw/commit
	// stages via Event; reset at each epoch start.
	drawn    atomic.Int64
	executed atomic.Int64
	accepted atomic.Int64
}

// ShardStatus is one shard's row in the status API.
type ShardStatus struct {
	ID            int    `json:"id"`
	State         string `json:"state"`
	Epoch         int    `json:"epoch"`
	SubmittedUsed int    `json:"submitted_used"`
	Resumed       bool   `json:"resumed"`
	Drawn         int64  `json:"drawn"`
	Executed      int64  `json:"executed"`
	Accepted      int64  `json:"accepted"`
}

// Event implements campaign.Observer: iteration/execution/acceptance
// tallies for the status API. Events fire from the engine's sequential
// stages, so no further ordering is needed.
func (sh *shard) Event(ev campaign.Event) {
	switch ev.(type) {
	case campaign.IterationStarted:
		sh.drawn.Add(1)
	case campaign.Executed:
		sh.executed.Add(1)
	case campaign.Accepted:
		sh.accepted.Add(1)
	}
}

func (sh *shard) setState(s string) {
	sh.mu.Lock()
	sh.state = s
	sh.mu.Unlock()
}

// beginEpoch installs a running epoch's handles and resets the live
// counters. Returns false — without installing — when the manager is
// draining, so no engine starts after Stop began collecting shards.
func (sh *shard) beginEpoch(epoch, used int, ctrl *campaign.Control, reg *telemetry.Registry, resumed bool) bool {
	sh.m.drainMu.Lock()
	defer sh.m.drainMu.Unlock()
	if sh.m.stopping.Load() {
		return false
	}
	sh.mu.Lock()
	sh.ctrl, sh.reg = ctrl, reg
	sh.epoch, sh.submittedUsed = epoch, used
	sh.state, sh.resumed = "running", resumed
	sh.drawn.Store(0)
	sh.executed.Store(0)
	sh.accepted.Store(0)
	sh.mu.Unlock()
	return true
}

// endEpoch clears the running handles (the epoch's engine returned).
func (sh *shard) endEpoch() {
	sh.mu.Lock()
	sh.ctrl, sh.reg = nil, nil
	sh.mu.Unlock()
}

// status snapshots the shard for the API.
func (sh *shard) status() ShardStatus {
	sh.mu.Lock()
	st := ShardStatus{
		ID:            sh.id,
		State:         sh.state,
		Epoch:         sh.epoch,
		SubmittedUsed: sh.submittedUsed,
		Resumed:       sh.resumed,
	}
	sh.mu.Unlock()
	st.Drawn = sh.drawn.Load()
	st.Executed = sh.executed.Load()
	st.Accepted = sh.accepted.Load()
	return st
}

// handles returns the consistent (ctrl, epoch, submittedUsed) triple,
// or a nil ctrl when no epoch is running.
func (sh *shard) handles() (*campaign.Control, int, int) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.ctrl, sh.epoch, sh.submittedUsed
}

// liveReg returns the running epoch's private registry, if any.
func (sh *shard) liveReg() *telemetry.Registry {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.reg
}

// advance moves to the next epoch after a fold.
func (sh *shard) advance() {
	sh.mu.Lock()
	sh.epoch++
	sh.state = "idle"
	sh.mu.Unlock()
}
