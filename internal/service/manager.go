package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/analysis"
	"repro/internal/campaign"
	"repro/internal/classfile"
	"repro/internal/coverage"
	"repro/internal/difftest"
	"repro/internal/jimple"
	"repro/internal/jvm"
	"repro/internal/prng"
	"repro/internal/seedgen"
	"repro/internal/seedsel"
	"repro/internal/telemetry"
)

// campaignStream derives per-shard-per-epoch campaign seeds from the
// daemon seed (prng.Mix stream id — any fixed constant distinct from
// the engine's internal streams works).
const campaignStream = 0x5ec1a55f

// Config parameterises a daemon.
type Config struct {
	// DataDir is the persistent root (created if missing): corpus,
	// state, shard checkpoints, memo. Required.
	DataDir string
	// Addr is the HTTP listen address (e.g. "127.0.0.1:8317"; use
	// ":0" for an ephemeral port — Manager.Addr reports the bound
	// one). Empty disables the HTTP API.
	Addr string
	// Shards is the number of concurrent campaign workers (default 1).
	Shards int
	// Workers sizes each shard's engine worker pool (default 1;
	// results are identical at any value).
	Workers int
	// Algorithm (default classfuzz) and Criterion shape every epoch.
	Algorithm campaign.Algorithm
	Criterion coverage.Criterion
	// SeedStrategy selects the seed-scheduling policy for every epoch:
	// "uniform" (default — the flat draw), "clustered" or "yield".
	// Unknown values fail Start.
	SeedStrategy string
	// SeedCount/Seed generate the base corpus; Seed also roots every
	// shard epoch's derived campaign seed.
	SeedCount int
	Seed      int64
	// Iterations is the budget per epoch (default 400).
	Iterations int
	// Epochs bounds epochs per shard; 0 means run until stopped.
	Epochs int
	// QueueCap bounds the seed-intake queue (default 64); a full
	// queue answers 429.
	QueueCap int
	// CheckpointEvery enables periodic checkpoints (0 disables; the
	// API trigger and drain-on-shutdown always work).
	CheckpointEvery time.Duration
	// RefSpec is the instrumented reference VM (zero value selects
	// HotSpot 9).
	RefSpec jvm.Spec
	// Logf receives daemon progress lines (nil for silent).
	Logf func(format string, args ...any)
}

func (c *Config) withDefaults() Config {
	d := *c
	if d.Shards < 1 {
		d.Shards = 1
	}
	if d.Workers < 1 {
		d.Workers = 1
	}
	if d.Algorithm == "" {
		d.Algorithm = campaign.Classfuzz
	}
	if d.SeedStrategy == "" {
		d.SeedStrategy = string(seedsel.Uniform)
	}
	if d.SeedCount < 1 {
		d.SeedCount = 60
	}
	if d.Iterations < 1 {
		d.Iterations = 400
	}
	if d.QueueCap < 1 {
		d.QueueCap = 64
	}
	if d.RefSpec.Name == "" {
		d.RefSpec = jvm.HotSpot9()
	}
	return d
}

// submittedSeed is one adopted corpus submission.
type submittedSeed struct {
	name  string
	class *jimple.Class
}

// Manager is the daemon: N shards, the folding session, the corpus
// intake, the checkpoint protocol and the HTTP API.
type Manager struct {
	cfg       Config
	session   *Session
	tel       *telemetry.Registry
	baseSeeds []*jimple.Class
	strategy  seedsel.Strategy

	mu        sync.Mutex
	submitted []submittedSeed
	// seedIndex is the intake classification index (nil under the
	// uniform strategy): the corpus's cluster structure, pinned to the
	// generated base seeds so cluster identities stay stable as
	// submissions join. clusterAgg accumulates per-cluster scheduling
	// outcomes across folded epochs, indexed like seedIndex's clusters.
	seedIndex  *seedsel.Scheduler
	clusterAgg []clusterTallies
	discs     []Discrepancy
	nextDisc  int
	// shardEpochs[i] is shard i's fold frontier (next epoch to run).
	shardEpochs []int
	discWake    chan struct{}
	queueHWM    int64

	// drainMu serialises "may an epoch still start?" against Stop:
	// Stop flips stopping under it, shards install their Control under
	// it, so after Stop returns from that critical section every shard
	// either has a visible Control (drained via Stop+checkpoint) or
	// will refuse to start its next epoch.
	drainMu  sync.Mutex
	stopping atomic.Bool

	queue chan []byte
	// intakeGate, when non-nil, blocks the intake worker until the
	// gate closes (test hook for exercising queue backpressure).
	intakeGate chan struct{}

	shards   []*shard
	wg       sync.WaitGroup // shard loops
	bgWG     sync.WaitGroup // intake + checkpoint timer + http serve
	stopCh   chan struct{}
	stopOnce sync.Once

	ln      net.Listener
	httpSrv *http.Server

	unlock  func() // releases the data-directory flock
	started bool
}

// New builds an unstarted Manager.
func New(cfg Config) *Manager {
	c := cfg.withDefaults()
	m := &Manager{
		cfg:      c,
		session:  NewSession(nil),
		discWake: make(chan struct{}),
		queue:    make(chan []byte, c.QueueCap),
		stopCh:   make(chan struct{}),
	}
	m.tel = m.session.Telemetry
	return m
}

// Session exposes the folding session (read it after Wait/Stop, or
// accept racy-but-consistent views while running).
func (m *Manager) Session() *Session { return m.session }

func (m *Manager) logf(format string, args ...any) {
	if m.cfg.Logf != nil {
		m.cfg.Logf(format, args...)
	}
}

// Start loads (or initialises) the data directory, resumes any shard
// checkpoints, and launches the shards, the intake worker, the
// checkpoint timer and the HTTP server.
func (m *Manager) Start() error {
	if m.started {
		return fmt.Errorf("service: manager already started")
	}
	m.started = true
	if m.cfg.DataDir == "" {
		return fmt.Errorf("service: DataDir is required")
	}
	for _, dir := range []string{m.cfg.DataDir, m.corpusDir(), m.checkpointDir()} {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	unlock, err := lockDataDir(m.cfg.DataDir)
	if err != nil {
		return err
	}
	m.unlock = unlock
	startOK := false
	defer func() {
		if !startOK {
			unlock()
			m.unlock = nil
		}
	}()
	m.shardEpochs = make([]int, m.cfg.Shards)

	strategy, err := seedsel.ParseStrategy(m.cfg.SeedStrategy)
	if err != nil {
		return err
	}
	m.strategy = strategy

	resuming, err := m.loadState()
	if err != nil {
		return err
	}
	m.baseSeeds = seedgen.Generate(seedgen.DefaultOptions(m.cfg.SeedCount, m.cfg.Seed))
	if m.strategy != seedsel.Uniform {
		// The intake index: cluster structure over the generated base
		// corpus, with every reloaded submission classified back into
		// it in arrival order (identical to how it was classified when
		// first accepted — classification is deterministic).
		idx, err := seedsel.New(m.baseSeeds, seedsel.Options{Strategy: m.strategy, RefSpec: m.cfg.RefSpec})
		if err != nil {
			return err
		}
		for _, s := range m.submitted {
			idx.AddSeed(s.class)
		}
		m.seedIndex = idx
		m.clusterAgg = make([]clusterTallies, idx.Clusters())
	}
	if err := m.loadMemo(); err != nil {
		return err
	}

	checkpoints := make([]*ShardCheckpoint, m.cfg.Shards)
	if resuming {
		for i := 0; i < m.cfg.Shards; i++ {
			checkpoints[i] = m.loadShardCheckpoint(i)
		}
	}

	// Persist the initial state before anything runs, so a fresh data
	// directory is stamped with the configuration it will forever
	// require.
	m.mu.Lock()
	st := m.stateLocked()
	m.mu.Unlock()
	if err := writeJSONAtomic(m.statePath(), st); err != nil {
		return err
	}

	if m.cfg.Addr != "" {
		ln, err := net.Listen("tcp", m.cfg.Addr)
		if err != nil {
			return err
		}
		m.ln = ln
		m.httpSrv = &http.Server{Handler: m.handler()}
		m.bgWG.Add(1)
		go func() {
			defer m.bgWG.Done()
			m.httpSrv.Serve(ln)
		}()
		m.logf("serving on http://%s/ (dashboard, /api, /metrics.json)", m.Addr())
	}

	m.bgWG.Add(1)
	go m.intake()
	if m.cfg.CheckpointEvery > 0 {
		m.bgWG.Add(1)
		go m.checkpointTimer()
	}

	m.shards = make([]*shard, m.cfg.Shards)
	for i := 0; i < m.cfg.Shards; i++ {
		sh := &shard{id: i, m: m, epoch: m.shardEpochs[i], state: "starting"}
		m.shards[i] = sh
		m.wg.Add(1)
		go m.runShard(sh, checkpoints[i])
	}
	startOK = true
	return nil
}

// Addr reports the bound HTTP address ("" when the API is disabled).
func (m *Manager) Addr() string {
	if m.ln == nil {
		return ""
	}
	return m.ln.Addr().String()
}

// Wait blocks until every shard finishes its epoch budget (never, when
// Epochs is 0 — use Stop). It does not shut the HTTP API down.
func (m *Manager) Wait() { m.wg.Wait() }

// Stop drains the daemon: intake answers 503, the HTTP listener shuts
// down, every running shard epoch is stopped at a coordinator boundary
// and checkpointed, queued-but-unprocessed seeds are adopted into the
// corpus, and the memo and state persist. A subsequent Start on the
// same data directory resumes with byte-identical results.
func (m *Manager) Stop(ctx context.Context) error {
	var firstErr error
	m.stopOnce.Do(func() {
		m.drainMu.Lock()
		m.stopping.Store(true)
		m.drainMu.Unlock()

		if m.httpSrv != nil {
			if err := m.httpSrv.Shutdown(ctx); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		close(m.stopCh)

		// Stop + checkpoint every running epoch, in parallel (each
		// Stop blocks until its engine reaches a boundary).
		var wg sync.WaitGroup
		for _, sh := range m.shards {
			wg.Add(1)
			go func(sh *shard) {
				defer wg.Done()
				m.checkpointShard(sh, true)
			}(sh)
		}
		wg.Wait()
		m.wg.Wait()
		m.bgWG.Wait()

		// Adopt any seeds still queued (the intake worker is gone);
		// they persist now and enter epochs after the restart.
		for {
			select {
			case data := <-m.queue:
				m.acceptSeed(data)
			default:
				goto drained
			}
		}
	drained:
		if err := m.persistMemo(); err != nil && firstErr == nil {
			firstErr = err
		}
		m.mu.Lock()
		st := m.stateLocked()
		m.mu.Unlock()
		if err := writeJSONAtomic(m.statePath(), st); err != nil && firstErr == nil {
			firstErr = err
		}
		if m.unlock != nil {
			m.unlock()
			m.unlock = nil
		}
	})
	return firstErr
}

// --- corpus -----------------------------------------------------------------

// loadState reads state.json (returns false when the directory is
// fresh), validates it against the configuration and lifts the corpus.
func (m *Manager) loadState() (bool, error) {
	var st State
	if err := readJSON(m.statePath(), &st); err != nil {
		if os.IsNotExist(err) {
			return false, nil
		}
		return false, err
	}
	if err := m.validateState(&st); err != nil {
		return false, err
	}
	copy(m.shardEpochs, st.ShardEpochs)
	m.discs = append(m.discs, st.Discrepancies...)
	m.nextDisc = st.NextDiscrepancy
	m.tel.Gauge(MetricDiscrepancies).Set(int64(len(m.discs)))
	for _, name := range st.Submitted {
		data, err := os.ReadFile(filepath.Join(m.corpusDir(), name))
		if err != nil {
			return false, fmt.Errorf("service: corpus file %s named by state.json: %w", name, err)
		}
		c, err := liftSeed(data)
		if err != nil {
			return false, fmt.Errorf("service: corpus file %s: %w", name, err)
		}
		m.submitted = append(m.submitted, submittedSeed{name: name, class: c})
	}
	return true, nil
}

// loadMemo imports memo.json into the session memos (the whole-class
// outcome memo and the method-granular verify memo), if present.
func (m *Manager) loadMemo() error {
	var exp difftest.MemoExport
	if err := readJSON(m.memoPath(), &exp); err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	vms := difftest.NewStandardRunner().VMs
	n, err := m.session.Memo.Import(&exp, vms)
	if err != nil {
		return err
	}
	nv := m.session.VerifyMemo.Import(exp.Verify, vms)
	m.logf("memo: adopted %d cached outcomes, %d method verdicts from %s", n, nv, m.memoPath())
	return nil
}

func (m *Manager) persistMemo() error {
	exp := m.session.Memo.Export()
	exp.Verify = m.session.VerifyMemo.Export()
	return writeJSONAtomic(m.memoPath(), exp)
}

// liftSeed validates submission bytes all the way to the class model
// the engine mutates.
func liftSeed(data []byte) (*jimple.Class, error) {
	f, err := classfile.Parse(data)
	if err != nil {
		return nil, err
	}
	return jimple.Lift(f)
}

// acceptSeed persists one queued submission and makes it visible to
// future epochs. Persist-before-visibility: the corpus file and the
// state.json naming it hit disk inside the same critical section that
// appends to the in-memory corpus, so no epoch can start on a seed a
// restart would not reload.
func (m *Manager) acceptSeed(data []byte) {
	c, err := liftSeed(data)
	if err != nil {
		m.tel.Counter(MetricSeedsRejected).Inc()
		m.logf("intake: dropped malformed submission: %v", err)
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	name := fmt.Sprintf("sub%05d.class", len(m.submitted))
	if err := os.WriteFile(filepath.Join(m.corpusDir(), name), data, 0o644); err != nil {
		m.logf("intake: persisting %s: %v", name, err)
		return
	}
	m.submitted = append(m.submitted, submittedSeed{name: name, class: c})
	if err := writeJSONAtomic(m.statePath(), m.stateLocked()); err != nil {
		m.logf("intake: state write: %v", err)
	}
	if m.seedIndex != nil {
		sc := m.seedIndex.AddSeed(c)
		m.logf("intake: %s classified into cluster %d (fp %016x)", name, sc.Cluster, sc.Fingerprint)
	}
	m.tel.Counter(MetricSeedsAccepted).Inc()
	m.logf("intake: adopted %s (%d submitted seeds)", name, len(m.submitted))
}

// classifySeed reports where intake would place c (ok=false under the
// uniform strategy, which has no index). Classification runs on the
// index's private VM, so it serialises under m.mu alongside adoption.
func (m *Manager) classifySeed(c *jimple.Class) (seedsel.SeedClass, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.seedIndex == nil {
		return seedsel.SeedClass{}, false
	}
	return m.seedIndex.Classify(c), true
}

// intake is the single consumer of the submission queue.
func (m *Manager) intake() {
	defer m.bgWG.Done()
	for {
		select {
		case <-m.stopCh:
			return
		case data := <-m.queue:
			if m.intakeGate != nil {
				select {
				case <-m.intakeGate:
				case <-m.stopCh:
					// Put it back for Stop's drain to adopt.
					m.queue <- data
					return
				}
			}
			m.acceptSeed(data)
			m.tel.Gauge(MetricQueueDepth).Set(int64(len(m.queue)))
		}
	}
}

// corpusFor assembles the epoch corpus: generated base seeds plus the
// first `used` submitted seeds in arrival order.
func (m *Manager) corpusFor(used int) []*jimple.Class {
	m.mu.Lock()
	defer m.mu.Unlock()
	if used > len(m.submitted) {
		used = len(m.submitted)
	}
	seeds := make([]*jimple.Class, 0, len(m.baseSeeds)+used)
	seeds = append(seeds, m.baseSeeds...)
	for _, s := range m.submitted[:used] {
		seeds = append(seeds, s.class)
	}
	return seeds
}

func (m *Manager) submittedCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.submitted)
}

// --- shard epochs -----------------------------------------------------------

// shardKey names a fold.
func shardKey(shard, epoch int) string { return fmt.Sprintf("shard%d/epoch%d", shard, epoch) }

// epochSeed derives the campaign seed for (shard, epoch) from the
// daemon seed: distinct streams per slot, reproducible forever.
func (m *Manager) epochSeed(shard, epoch int) int64 {
	return prng.Mix(m.cfg.Seed, campaignStream, uint64(shard)<<32|uint64(uint32(epoch)))
}

// epochSource builds one epoch's SeedSource over the corpus prefix:
// the flat-uniform adapter, or a fresh scheduler (stateful sources
// serve exactly one engine run — a Resume replays the committed prefix
// into it). The scheduler's cluster identities match the intake
// index's: representatives are restricted to the generated base
// corpus, so submitted seeds join existing clusters.
func (m *Manager) epochSource(used int, reg *telemetry.Registry) (campaign.SeedSource, *seedsel.Scheduler, error) {
	corpus := m.corpusFor(used)
	if m.strategy == seedsel.Uniform {
		return campaign.FlatSeeds(corpus), nil, nil
	}
	sched, err := seedsel.New(corpus, seedsel.Options{
		Strategy:  m.strategy,
		RefSpec:   m.cfg.RefSpec,
		Base:      len(m.baseSeeds),
		Telemetry: reg,
	})
	if err != nil {
		return nil, nil, err
	}
	return sched, sched, nil
}

// campaignConfig shapes one epoch's engine run.
func (m *Manager) campaignConfig(sh *shard, epoch int, src campaign.SeedSource, ctrl *campaign.Control, reg *telemetry.Registry) campaign.Config {
	return campaign.Config{
		Algorithm:       m.cfg.Algorithm,
		Criterion:       m.cfg.Criterion,
		Source:          src,
		Iterations:      m.cfg.Iterations,
		Rand:            m.epochSeed(sh.id, epoch),
		RefSpec:         m.cfg.RefSpec,
		StaticPrefilter: true,
		Workers:         m.cfg.Workers,
		Observer:        sh,
		Control:         ctrl,
		Telemetry:       reg,
	}
}

// runShard is a shard's epoch loop. cp, when non-nil, resumes the
// first epoch from its checkpoint.
func (m *Manager) runShard(sh *shard, cp *ShardCheckpoint) {
	defer m.wg.Done()
	for {
		_, epoch, _ := sh.handles()
		if m.cfg.Epochs > 0 && epoch >= m.cfg.Epochs {
			sh.setState("done")
			return
		}
		ctrl := campaign.NewControl()
		reg := telemetry.New()
		var eng *campaign.Engine
		var sched *seedsel.Scheduler
		var used int
		resumed := false
		if cp != nil {
			used = cp.SubmittedUsed
			src, sc, err := m.epochSource(used, reg)
			if err == nil {
				eng, err = campaign.Resume(m.campaignConfig(sh, epoch, src, ctrl, reg), cp.Campaign)
			}
			if err != nil {
				m.logf("shard %d: checkpoint rejected (%v); restarting epoch %d fresh", sh.id, err, epoch)
				eng = nil
			} else {
				sched = sc
				m.tel.Counter(MetricCheckpointsRestored).Inc()
				resumed = true
				m.logf("shard %d: resumed epoch %d at iteration %d/%d", sh.id, epoch, cp.Campaign.Committed, m.cfg.Iterations)
			}
			cp = nil
		}
		if eng == nil {
			used = m.submittedCount()
			src, sc, err := m.epochSource(used, reg)
			if err == nil {
				eng, err = campaign.NewEngine(m.campaignConfig(sh, epoch, src, ctrl, reg))
			}
			if err != nil {
				m.logf("shard %d: engine: %v", sh.id, err)
				sh.setState("failed")
				return
			}
			sched = sc
		}
		if !sh.beginEpoch(epoch, used, ctrl, reg, resumed) {
			sh.setState("stopped")
			return
		}
		res, err := eng.Run()
		sh.endEpoch()
		if err != nil {
			m.logf("shard %d epoch %d: %v", sh.id, epoch, err)
			sh.setState("failed")
			return
		}
		if res.Stopped {
			// The drain path that asked for the stop wrote the
			// checkpoint; the partial epoch folds after the restart.
			sh.setState("stopped")
			return
		}
		m.foldEpoch(sh, epoch, res, reg, sched)
		sh.advance()
	}
}

// foldEpoch absorbs one completed epoch: session fold, differential
// testing of the accepted suite against the shared memo, discrepancy
// log append (each discrepancy credited to the seed cluster its
// lineage's root seed belongs to), per-cluster scheduling tallies,
// state-frontier advance and persist.
func (m *Manager) foldEpoch(sh *shard, epoch int, res *campaign.Result, reg *telemetry.Registry, sched *seedsel.Scheduler) {
	m.session.Fold(shardKey(sh.id, epoch), res, reg)
	m.tel.Counter(MetricShardMerges).Inc()
	m.tel.Counter(MetricEpochsCompleted).Inc()

	runner := m.session.Runner()
	names := runner.Names()
	var found []Discrepancy
	for _, g := range res.Test {
		v := runner.Run(g.Data)
		if !v.Discrepant() {
			continue
		}
		d := Discrepancy{
			Shard:       sh.id,
			Epoch:       epoch,
			Iteration:   g.Iter,
			Class:       g.Name,
			Fingerprint: analysis.ContentFingerprint(g.Data),
			Vector:      v.Key(),
			Cluster:     -1,
		}
		for i, o := range v.Outcomes {
			d.Outcomes = append(d.Outcomes, fmt.Sprintf("%s: %s", names[i], o))
		}
		found = append(found, d)
	}

	m.mu.Lock()
	if sched != nil {
		for i, cs := range sched.ClusterStats() {
			if i >= len(m.clusterAgg) {
				break // epoch built under a different corpus shape; skip extras
			}
			agg := &m.clusterAgg[i]
			agg.draws += cs.Draws
			agg.yield += cs.Yield
			agg.demotions += cs.Demotions
			agg.demoted = cs.Demoted
		}
		for i := range found {
			if root := campaign.RootSeed(res.Draws, found[i].Iteration); root >= 0 {
				if ci := sched.ClusterOf(root); ci >= 0 {
					found[i].Cluster = ci
					if ci < len(m.clusterAgg) {
						m.clusterAgg[ci].discrepancies++
					}
				}
			}
		}
	}
	for i := range found {
		found[i].ID = m.nextDisc
		m.nextDisc++
	}
	m.discs = append(m.discs, found...)
	m.shardEpochs[sh.id] = epoch + 1
	m.tel.Gauge(MetricDiscrepancies).Set(int64(len(m.discs)))
	if len(found) > 0 {
		close(m.discWake)
		m.discWake = make(chan struct{})
	}
	st := m.stateLocked()
	if err := writeJSONAtomic(m.statePath(), st); err != nil {
		m.logf("fold: state write: %v", err)
	}
	m.mu.Unlock()
	// The epoch is folded; its checkpoint (if any) is now stale.
	os.Remove(m.checkpointPath(sh.id))
	m.logf("shard %d: epoch %d folded (%d tests, %d discrepancies, session coverage %s)",
		sh.id, epoch, len(res.Test), len(found), m.session.Coverage())
}

// --- checkpointing ----------------------------------------------------------

// checkpointShard snapshots a shard's running epoch (stopping it when
// stop is set) and persists the checkpoint. Reports whether a
// checkpoint was written.
func (m *Manager) checkpointShard(sh *shard, stop bool) bool {
	ctrl, epoch, used := sh.handles()
	if ctrl == nil {
		return false
	}
	var snap *campaign.Snapshot
	if stop {
		snap = ctrl.Stop()
	} else {
		snap = ctrl.Snapshot()
	}
	if snap == nil {
		return false
	}
	cp := &ShardCheckpoint{
		Version:       ShardCheckpointVersion,
		Shard:         sh.id,
		Epoch:         epoch,
		SubmittedUsed: used,
		Campaign:      snap,
	}
	if err := writeJSONAtomic(m.checkpointPath(sh.id), cp); err != nil {
		m.logf("shard %d: checkpoint write: %v", sh.id, err)
		return false
	}
	m.tel.Counter(MetricCheckpointsWritten).Inc()
	return true
}

// CheckpointNow snapshots every running shard epoch without stopping
// anything, plus the memo. Returns how many shard checkpoints were
// written.
func (m *Manager) CheckpointNow() int {
	n := 0
	for _, sh := range m.shards {
		if m.checkpointShard(sh, false) {
			n++
		}
	}
	if err := m.persistMemo(); err != nil {
		m.logf("checkpoint: memo write: %v", err)
	}
	return n
}

func (m *Manager) checkpointTimer() {
	defer m.bgWG.Done()
	t := time.NewTicker(m.cfg.CheckpointEvery)
	defer t.Stop()
	for {
		select {
		case <-m.stopCh:
			return
		case <-t.C:
			m.CheckpointNow()
		}
	}
}

// --- status -----------------------------------------------------------------

// Status is the /api/status document.
type Status struct {
	Algorithm     string         `json:"algorithm"`
	Criterion     string         `json:"criterion"`
	SeedStrategy  string         `json:"seed_strategy"`
	Shards        []ShardStatus  `json:"shards"`
	BaseSeeds     int            `json:"base_seeds"`
	Submitted     int            `json:"submitted"`
	QueueDepth    int            `json:"queue_depth"`
	QueueCap      int            `json:"queue_cap"`
	Discrepancies int            `json:"discrepancies"`
	Merges        int            `json:"merges"`
	Coverage      coverage.Stats `json:"coverage"`
	Stopping      bool           `json:"stopping"`
	// SeedClusters is the per-cluster seed table (clustered/yield
	// strategies only): corpus membership from the intake index,
	// scheduling outcomes accumulated across folded epochs.
	SeedClusters []ClusterStatus `json:"seed_clusters,omitempty"`
}

// ClusterStatus is one seed cluster's row in the status API.
type ClusterStatus struct {
	Cluster       int   `json:"cluster"`
	Seeds         int   `json:"seeds"`
	Draws         int64 `json:"draws"`
	Yield         int64 `json:"yield"`
	Demotions     int64 `json:"demotions"`
	Discrepancies int64 `json:"discrepancies"`
	Demoted       bool  `json:"demoted"`
}

// clusterTallies accumulates one cluster's scheduling outcomes across
// folded epochs (m.mu-guarded, parallel to the intake index clusters).
type clusterTallies struct {
	draws, yield, demotions, discrepancies int64
	demoted                                bool
}

// Status snapshots the daemon for the API and dashboard.
func (m *Manager) Status() Status {
	st := Status{
		Algorithm:    string(m.cfg.Algorithm),
		Criterion:    m.cfg.Criterion.String(),
		SeedStrategy: string(m.strategy),
		BaseSeeds:    len(m.baseSeeds),
		QueueDepth:   len(m.queue),
		QueueCap:     m.cfg.QueueCap,
		Merges:       m.session.Merges(),
		Coverage:     m.session.Coverage(),
		Stopping:     m.stopping.Load(),
	}
	for _, sh := range m.shards {
		st.Shards = append(st.Shards, sh.status())
	}
	m.mu.Lock()
	st.Submitted = len(m.submitted)
	st.Discrepancies = len(m.discs)
	if m.seedIndex != nil {
		for i, cs := range m.seedIndex.ClusterStats() {
			row := ClusterStatus{Cluster: i, Seeds: cs.Seeds}
			if i < len(m.clusterAgg) {
				agg := m.clusterAgg[i]
				row.Draws, row.Yield = agg.draws, agg.yield
				row.Demotions, row.Discrepancies = agg.demotions, agg.discrepancies
				row.Demoted = agg.demoted
			}
			st.SeedClusters = append(st.SeedClusters, row)
		}
	}
	m.mu.Unlock()
	return st
}

// Discrepancies returns the log entries with ID >= since.
func (m *Manager) Discrepancies(since int) []Discrepancy {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := []Discrepancy{}
	for _, d := range m.discs {
		if d.ID >= since {
			out = append(out, d)
		}
	}
	return out
}

// liveSnapshot merges the session roll-up with every running epoch's
// private registry, so /metrics.json shows in-flight campaign counters
// before their epochs fold.
func (m *Manager) liveSnapshot() telemetry.Snapshot {
	regs := []*telemetry.Registry{m.tel}
	for _, sh := range m.shards {
		if r := sh.liveReg(); r != nil {
			regs = append(regs, r)
		}
	}
	return telemetry.LiveSnapshot(regs...)()
}

// MetricsJSON renders the live snapshot (for dumps and tests).
func (m *Manager) MetricsJSON() ([]byte, error) {
	return json.MarshalIndent(m.liveSnapshot(), "", "  ")
}
