package service

// dashboardHTML is the daemon's single-page dashboard: it polls
// /api/status, /api/discrepancies and /metrics.json and renders shard
// progress, corpus/queue state and the discrepancy feed. No external
// assets; works from file:// curl output too.
const dashboardHTML = `<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>classfuzzd</title>
<style>
 body { font: 14px/1.4 system-ui, sans-serif; margin: 2em; background: #111; color: #ddd; }
 h1 { font-size: 1.3em; } h2 { font-size: 1.05em; margin-top: 1.5em; }
 table { border-collapse: collapse; margin: .5em 0; }
 th, td { border: 1px solid #444; padding: .25em .7em; text-align: right; }
 th { background: #222; } td.l, th.l { text-align: left; }
 .ok { color: #7c7; } .warn { color: #fc6; } .bad { color: #f77; }
 code { background: #222; padding: 0 .3em; }
 #discs div { border-left: 3px solid #955; padding-left: .6em; margin: .4em 0; }
 small { color: #888; }
</style>
</head>
<body>
<h1>classfuzzd <small id="addr"></small></h1>
<div id="summary">loading…</div>
<h2>Shards</h2>
<table id="shards"><thead>
<tr><th>shard</th><th class="l">state</th><th>epoch</th><th>drawn</th><th>executed</th><th>accepted</th><th>corpus+</th><th>resumed</th></tr>
</thead><tbody></tbody></table>
<h2>Service metrics</h2>
<div id="metrics"></div>
<h2>Discrepancies</h2>
<div id="discs"><small>none yet</small></div>
<script>
async function j(u) { const r = await fetch(u); return r.json(); }
function esc(s) { return String(s).replace(/[&<>]/g, c => ({'&':'&amp;','<':'&lt;','>':'&gt;'}[c])); }
async function tick() {
  try {
    const st = await j('/api/status');
    document.getElementById('summary').innerHTML =
      '<b>' + esc(st.algorithm) + '</b>[' + esc(st.criterion) + '] — ' +
      st.base_seeds + ' base seeds + ' + st.submitted + ' submitted, queue ' +
      st.queue_depth + '/' + st.queue_cap + ', ' + st.merges + ' epochs folded, ' +
      '<span class="' + (st.discrepancies ? 'warn' : 'ok') + '">' + st.discrepancies +
      ' discrepancies</span>, coverage ' + st.coverage.Stmts + '/' + st.coverage.Branches +
      (st.stopping ? ' — <span class="bad">draining</span>' : '');
    const tb = document.querySelector('#shards tbody');
    tb.innerHTML = st.shards.map(s =>
      '<tr><td>' + s.id + '</td><td class="l">' + esc(s.state) + '</td><td>' + s.epoch +
      '</td><td>' + s.drawn + '</td><td>' + s.executed + '</td><td>' + s.accepted +
      '</td><td>' + s.submitted_used + '</td><td>' + (s.resumed ? 'yes' : '') + '</td></tr>').join('');
    const m = await j('/metrics.json');
    const c = m.counters || {}, g = m.gauges || {};
    const rows = Object.keys(c).filter(k => k.startsWith('service.')).sort()
      .map(k => '<tr><td class="l"><code>' + esc(k) + '</code></td><td>' + c[k] + '</td></tr>')
      .concat(Object.keys(g).filter(k => k.startsWith('service.')).sort()
      .map(k => '<tr><td class="l"><code>' + esc(k) + '</code></td><td>' + g[k] + '</td></tr>'));
    document.getElementById('metrics').innerHTML =
      '<table><thead><tr><th class="l">metric</th><th>value</th></tr></thead><tbody>' +
      rows.join('') + '</tbody></table>';
    const d = await j('/api/discrepancies');
    if (d.discrepancies.length) {
      document.getElementById('discs').innerHTML = d.discrepancies.slice(-40).reverse().map(x =>
        '<div><b>#' + x.id + '</b> shard ' + x.shard + ' epoch ' + x.epoch +
        ' <code>' + esc(x.class) + '</code> vector <code>' + esc(x.vector) + '</code><br><small>' +
        x.outcomes.map(esc).join(' · ') + '</small></div>').join('');
    }
  } catch (e) { /* daemon draining; keep last view */ }
}
document.getElementById('addr').textContent = location.host;
tick(); setInterval(tick, 2000);
</script>
</body>
</html>
`
