package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/telemetry"
)

// maxSeedBytes bounds one submission body.
const maxSeedBytes = 1 << 20

// handler builds the daemon's HTTP surface:
//
//	POST /api/seeds          — submit a classfile for the corpus
//	                           (202 queued, 400 malformed, 413 too
//	                           large, 429 queue full, 503 draining)
//	GET  /api/status         — shard/corpus/queue/discrepancy counts
//	GET  /api/discrepancies  — ?since=N lists entries with ID >= N;
//	                           &wait=1 long-polls for new ones
//	POST /api/checkpoint     — snapshot every running shard + memo
//	GET  /metrics.json       — live telemetry (session + running epochs)
//	GET  /healthz            — liveness
//	GET  /                   — dashboard
func (m *Manager) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/seeds", m.handleSeeds)
	mux.HandleFunc("GET /api/status", m.handleStatus)
	mux.HandleFunc("GET /api/discrepancies", m.handleDiscrepancies)
	mux.HandleFunc("POST /api/checkpoint", m.handleCheckpoint)
	tel := telemetry.Handler(m.liveSnapshot)
	mux.Handle("/metrics.json", tel)
	mux.Handle("/healthz", tel)
	mux.HandleFunc("GET /{$}", m.handleDashboard)
	return mux
}

func respondJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	blob, _ := json.MarshalIndent(v, "", "  ")
	w.Write(append(blob, '\n'))
}

// handleSeeds implements the backpressured intake: the bounded queue
// is the only buffer, a full queue answers 429 immediately (callers
// retry with backoff), and a draining daemon answers 503 so load
// balancers fail over.
func (m *Manager) handleSeeds(w http.ResponseWriter, r *http.Request) {
	if m.stopping.Load() {
		respondJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "draining"})
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSeedBytes))
	if err != nil {
		respondJSON(w, http.StatusRequestEntityTooLarge, map[string]string{"error": "body too large"})
		return
	}
	// Validate before queueing: malformed submissions cost the
	// submitter a 400, not the intake worker a cycle.
	c, err := liftSeed(data)
	if err != nil {
		m.tel.Counter(MetricSeedsRejected).Inc()
		respondJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("not a liftable classfile: %v", err)})
		return
	}
	select {
	case m.queue <- data:
		depth := int64(len(m.queue))
		m.tel.Gauge(MetricQueueDepth).Set(depth)
		m.mu.Lock()
		if depth > m.queueHWM {
			m.queueHWM = depth
			m.tel.Gauge(MetricQueueHighWater).Set(depth)
		}
		m.mu.Unlock()
		resp := map[string]any{"status": "queued", "depth": depth}
		// Under a scheduling strategy, tell the submitter where its
		// seed lands: structural fingerprint, baseline trace key, and
		// the cluster intake will assign it to.
		if sc, ok := m.classifySeed(c); ok {
			resp["fingerprint"] = fmt.Sprintf("%016x", sc.Fingerprint)
			resp["trace_key"] = fmt.Sprintf("%016x%016x", sc.TraceKeyHi, sc.TraceKeyLo)
			resp["cluster"] = sc.Cluster
		}
		respondJSON(w, http.StatusAccepted, resp)
	default:
		m.tel.Counter(MetricSeedsThrottled).Inc()
		w.Header().Set("Retry-After", "1")
		respondJSON(w, http.StatusTooManyRequests, map[string]string{"error": "intake queue full"})
	}
}

func (m *Manager) handleStatus(w http.ResponseWriter, r *http.Request) {
	respondJSON(w, http.StatusOK, m.Status())
}

// handleDiscrepancies lists (and optionally long-polls for) the
// discrepancy log. The response's next field is the since value that
// continues the stream.
func (m *Manager) handleDiscrepancies(w http.ResponseWriter, r *http.Request) {
	since := 0
	if s := r.URL.Query().Get("since"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			respondJSON(w, http.StatusBadRequest, map[string]string{"error": "since must be a non-negative integer"})
			return
		}
		since = n
	}
	wait := r.URL.Query().Get("wait") != ""
	deadline := time.After(25 * time.Second)
	for {
		m.mu.Lock()
		next := m.nextDisc
		wake := m.discWake
		m.mu.Unlock()
		ds := m.Discrepancies(since)
		if len(ds) > 0 || !wait {
			respondJSON(w, http.StatusOK, map[string]any{"next": next, "discrepancies": ds})
			return
		}
		select {
		case <-wake:
		case <-deadline:
			respondJSON(w, http.StatusOK, map[string]any{"next": next, "discrepancies": ds})
			return
		case <-r.Context().Done():
			return
		case <-m.stopCh:
			respondJSON(w, http.StatusOK, map[string]any{"next": next, "discrepancies": ds})
			return
		}
	}
}

func (m *Manager) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	n := m.CheckpointNow()
	respondJSON(w, http.StatusOK, map[string]int{"written": n})
}

func (m *Manager) handleDashboard(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	io.WriteString(w, dashboardHTML)
}
