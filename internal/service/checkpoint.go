package service

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/campaign"
	"repro/internal/seedsel"
)

// On-disk layout under Config.DataDir:
//
//	state.json              — State: config echo, corpus order, shard
//	                          epoch frontiers, discrepancy log
//	corpus/subNNNNN.class   — submitted seed classfiles, arrival order
//	checkpoints/shard-N.json — ShardCheckpoint per shard (mid-epoch)
//	memo.json               — difftest.MemoExport of the session memo
//
// Write ordering is the consistency argument: a corpus file and the
// state.json that names it are persisted BEFORE the seed becomes
// visible to shards, so no shard checkpoint can ever reference a seed
// the disk does not hold. state.json is rewritten after every fold
// (shard epoch frontier advance) and every accepted submission; shard
// checkpoints whose Epoch is behind the state frontier are stale relics
// of those races and are ignored at load. All files are written to a
// temp name in the same directory and renamed into place, so a kill -9
// at any instant leaves either the old or the new version, never a
// torn one.

// StateVersion is state.json's format version.
const StateVersion = 1

// ShardCheckpointVersion is the shard checkpoint format version.
const ShardCheckpointVersion = 1

// State is the daemon's persistent root: enough to validate that a
// restart's configuration matches the data directory, rebuild the
// corpus in arrival order, and know each shard's epoch frontier.
type State struct {
	Version    int    `json:"version"`
	Algorithm  string `json:"algorithm"`
	Criterion  int    `json:"criterion"`
	Seed       int64  `json:"seed"`
	SeedCount  int    `json:"seed_count"`
	Iterations int    `json:"iterations"`
	Shards     int    `json:"shards"`
	// SeedStrategy is the seed-selection policy the data dir was built
	// under (empty in pre-strategy states, meaning "uniform").
	SeedStrategy string `json:"seed_strategy,omitempty"`
	// Submitted lists corpus file names in arrival order; position is
	// identity (checkpoints pin a prefix length, not names).
	Submitted []string `json:"submitted"`
	// ShardEpochs[i] is shard i's next epoch to run — every epoch
	// below it has been folded into the session.
	ShardEpochs []int `json:"shard_epochs"`
	// NextDiscrepancy is the next discrepancy ID to assign.
	NextDiscrepancy int `json:"next_discrepancy"`
	// Discrepancies is the accumulated discrepancy log.
	Discrepancies []Discrepancy `json:"discrepancies"`
}

// ShardCheckpoint freezes one shard mid-epoch: the engine snapshot
// plus the corpus prefix the epoch was started with.
type ShardCheckpoint struct {
	Version int `json:"version"`
	Shard   int `json:"shard"`
	Epoch   int `json:"epoch"`
	// SubmittedUsed is how many submitted seeds (in arrival order) the
	// epoch's corpus includes after the generated base seeds.
	SubmittedUsed int                `json:"submitted_used"`
	Campaign      *campaign.Snapshot `json:"campaign"`
}

// Discrepancy is one discrepancy-triggering classfile found by a shard
// epoch. IDs are assigned in fold-arrival order (monotonic within a
// daemon lifetime, persisted across restarts); the (Shard, Epoch,
// Class) triple is the deterministic identity.
type Discrepancy struct {
	ID          int      `json:"id"`
	Shard       int      `json:"shard"`
	Epoch       int      `json:"epoch"`
	Iteration   int      `json:"iteration"`
	Class       string   `json:"class"`
	Fingerprint uint64   `json:"fingerprint"`
	Vector      string   `json:"vector"`
	Outcomes    []string `json:"outcomes"`
	// Cluster is the seed cluster the triggering class's lineage roots
	// in (-1 when no scheduler is active, e.g. the uniform strategy).
	Cluster int `json:"cluster"`
}

// writeJSONAtomic marshals v and renames it into place. The temp file
// lives in the target's directory so the rename cannot cross devices.
func writeJSONAtomic(path string, v any) error {
	blob, err := json.MarshalIndent(v, "", " ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(append(blob, '\n'))
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr != nil {
			return werr
		}
		return cerr
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// readJSON loads path into v; a missing file returns os.ErrNotExist.
func readJSON(path string, v any) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return json.Unmarshal(blob, v)
}

func (m *Manager) statePath() string      { return filepath.Join(m.cfg.DataDir, "state.json") }
func (m *Manager) memoPath() string       { return filepath.Join(m.cfg.DataDir, "memo.json") }
func (m *Manager) corpusDir() string      { return filepath.Join(m.cfg.DataDir, "corpus") }
func (m *Manager) checkpointDir() string  { return filepath.Join(m.cfg.DataDir, "checkpoints") }
func (m *Manager) checkpointPath(shard int) string {
	return filepath.Join(m.checkpointDir(), fmt.Sprintf("shard-%d.json", shard))
}

// stateLocked builds the current State. Caller holds m.mu.
func (m *Manager) stateLocked() *State {
	st := &State{
		Version:         StateVersion,
		Algorithm:       string(m.cfg.Algorithm),
		Criterion:       int(m.cfg.Criterion),
		Seed:            m.cfg.Seed,
		SeedCount:       m.cfg.SeedCount,
		Iterations:      m.cfg.Iterations,
		Shards:          m.cfg.Shards,
		SeedStrategy:    string(m.strategy),
		ShardEpochs:     append([]int(nil), m.shardEpochs...),
		NextDiscrepancy: m.nextDisc,
		Discrepancies:   append([]Discrepancy(nil), m.discs...),
	}
	for _, s := range m.submitted {
		st.Submitted = append(st.Submitted, s.name)
	}
	return st
}

// validateState checks that a loaded state matches the manager's
// configuration; resuming a data directory under a different campaign
// shape would silently fork every determinism guarantee, so it fails.
func (m *Manager) validateState(st *State) error {
	fail := func(field string, disk, cfg any) error {
		return fmt.Errorf("service: data dir %s mismatch on %s: disk %v, config %v",
			m.cfg.DataDir, field, disk, cfg)
	}
	if st.Version != StateVersion {
		return fmt.Errorf("service: state version %d, this build reads %d", st.Version, StateVersion)
	}
	if st.Algorithm != string(m.cfg.Algorithm) {
		return fail("algorithm", st.Algorithm, m.cfg.Algorithm)
	}
	if st.Criterion != int(m.cfg.Criterion) {
		return fail("criterion", st.Criterion, m.cfg.Criterion)
	}
	if st.Seed != m.cfg.Seed {
		return fail("seed", st.Seed, m.cfg.Seed)
	}
	if st.SeedCount != m.cfg.SeedCount {
		return fail("seed_count", st.SeedCount, m.cfg.SeedCount)
	}
	if st.Iterations != m.cfg.Iterations {
		return fail("iterations", st.Iterations, m.cfg.Iterations)
	}
	if st.Shards != m.cfg.Shards {
		return fail("shards", st.Shards, m.cfg.Shards)
	}
	if len(st.ShardEpochs) != m.cfg.Shards {
		return fmt.Errorf("service: state has %d shard frontiers for %d shards", len(st.ShardEpochs), m.cfg.Shards)
	}
	diskStrategy := st.SeedStrategy
	if diskStrategy == "" {
		diskStrategy = string(seedsel.Uniform) // pre-strategy states were uniform
	}
	if diskStrategy != string(m.strategy) {
		return fail("seed_strategy", diskStrategy, m.strategy)
	}
	return nil
}

// loadShardCheckpoint reads shard i's checkpoint if one exists and is
// current (its epoch equals the state frontier — older ones are stale
// relics of checkpoint/fold races and are deleted). Caller holds m.mu
// or runs before shards start.
func (m *Manager) loadShardCheckpoint(i int) *ShardCheckpoint {
	var cp ShardCheckpoint
	if err := readJSON(m.checkpointPath(i), &cp); err != nil {
		if !os.IsNotExist(err) {
			m.logf("shard %d: unreadable checkpoint ignored: %v", i, err)
		}
		return nil
	}
	switch {
	case cp.Version != ShardCheckpointVersion:
		m.logf("shard %d: checkpoint version %d unsupported, ignored", i, cp.Version)
	case cp.Shard != i:
		m.logf("shard %d: checkpoint names shard %d, ignored", i, cp.Shard)
	case cp.Epoch < m.shardEpochs[i]:
		// Stale: the epoch already folded. Normal after the fold/drain
		// race; remove quietly.
		os.Remove(m.checkpointPath(i))
	case cp.Epoch > m.shardEpochs[i]:
		m.logf("shard %d: checkpoint epoch %d ahead of state frontier %d, ignored", i, cp.Epoch, m.shardEpochs[i])
	case cp.SubmittedUsed > len(m.submitted):
		m.logf("shard %d: checkpoint pins %d submitted seeds, corpus holds %d; ignored", i, cp.SubmittedUsed, len(m.submitted))
	case cp.Campaign == nil:
		m.logf("shard %d: checkpoint has no campaign snapshot, ignored", i)
	default:
		return &cp
	}
	return nil
}
