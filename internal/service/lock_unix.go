//go:build unix

package service

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// lockDataDir takes an exclusive advisory lock on dataDir/lock so two
// daemons can never share a data directory: each would rewrite
// state.json from its own in-memory view and silently clobber the
// other's corpus, frontiers and discrepancy log. The flock is released
// by the kernel when the process exits — kill -9 included — so a
// crashed daemon never wedges its data directory.
func lockDataDir(dir string) (func(), error) {
	f, err := os.OpenFile(filepath.Join(dir, "lock"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("service: data dir %s is locked by another daemon: %w", dir, err)
	}
	return func() {
		syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
		f.Close()
	}, nil
}
