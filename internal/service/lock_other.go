//go:build !unix

package service

// Advisory data-directory locking needs flock; on platforms without it
// two daemons sharing a data directory are unguarded.
func lockDataDir(dir string) (func(), error) { return func() {}, nil }
