package classfile

import (
	"encoding/binary"

	"repro/internal/bytecode"
)

// CodeBuilder incrementally assembles a method body. It is the
// convenience layer used by the seed generator and by tests: emit
// instructions against the class's constant pool, then Attach the
// resulting Code attribute to a method.
type CodeBuilder struct {
	pool      *ConstPool
	code      []byte
	maxStack  uint16
	maxLocals uint16
	handlers  []ExceptionHandler
}

// NewCodeBuilder returns a builder writing against the given pool.
func NewCodeBuilder(pool *ConstPool) *CodeBuilder {
	return &CodeBuilder{pool: pool}
}

// SetMaxStack overrides the computed max_stack value.
func (b *CodeBuilder) SetMaxStack(n uint16) *CodeBuilder { b.maxStack = n; return b }

// SetMaxLocals overrides the computed max_locals value.
func (b *CodeBuilder) SetMaxLocals(n uint16) *CodeBuilder { b.maxLocals = n; return b }

// PC returns the current bytecode offset.
func (b *CodeBuilder) PC() int { return len(b.code) }

// Op emits a bare opcode.
func (b *CodeBuilder) Op(op bytecode.Opcode) *CodeBuilder {
	b.code = append(b.code, byte(op))
	return b
}

// U1 emits an opcode with one raw operand byte.
func (b *CodeBuilder) U1(op bytecode.Opcode, v byte) *CodeBuilder {
	b.code = append(b.code, byte(op), v)
	return b
}

// U2 emits an opcode with one raw 16-bit operand.
func (b *CodeBuilder) U2(op bytecode.Opcode, v uint16) *CodeBuilder {
	b.code = append(b.code, byte(op))
	b.code = binary.BigEndian.AppendUint16(b.code, v)
	return b
}

// Ldc emits ldc/ldc_w for a string constant.
func (b *CodeBuilder) Ldc(s string) *CodeBuilder {
	idx := b.pool.AddString(s)
	if idx <= 0xFF {
		return b.U1(bytecode.Ldc, byte(idx))
	}
	return b.U2(bytecode.LdcW, idx)
}

// LdcInt emits the shortest instruction pushing an int constant.
func (b *CodeBuilder) LdcInt(v int32) *CodeBuilder {
	switch {
	case v >= -1 && v <= 5:
		return b.Op(bytecode.Opcode(byte(bytecode.Iconst0) + byte(v)))
	case v >= -128 && v <= 127:
		return b.U1(bytecode.Bipush, byte(int8(v)))
	case v >= -32768 && v <= 32767:
		return b.U2(bytecode.Sipush, uint16(int16(v)))
	default:
		idx := b.pool.AddInteger(v)
		if idx <= 0xFF {
			return b.U1(bytecode.Ldc, byte(idx))
		}
		return b.U2(bytecode.LdcW, idx)
	}
}

// Getstatic emits a getstatic against a field reference.
func (b *CodeBuilder) Getstatic(class, name, desc string) *CodeBuilder {
	return b.U2(bytecode.Getstatic, b.pool.AddFieldref(class, name, desc))
}

// Putstatic emits a putstatic against a field reference.
func (b *CodeBuilder) Putstatic(class, name, desc string) *CodeBuilder {
	return b.U2(bytecode.Putstatic, b.pool.AddFieldref(class, name, desc))
}

// Getfield emits a getfield against a field reference.
func (b *CodeBuilder) Getfield(class, name, desc string) *CodeBuilder {
	return b.U2(bytecode.Getfield, b.pool.AddFieldref(class, name, desc))
}

// Putfield emits a putfield against a field reference.
func (b *CodeBuilder) Putfield(class, name, desc string) *CodeBuilder {
	return b.U2(bytecode.Putfield, b.pool.AddFieldref(class, name, desc))
}

// Invokevirtual emits an invokevirtual against a method reference.
func (b *CodeBuilder) Invokevirtual(class, name, desc string) *CodeBuilder {
	return b.U2(bytecode.Invokevirtual, b.pool.AddMethodref(class, name, desc))
}

// Invokespecial emits an invokespecial against a method reference.
func (b *CodeBuilder) Invokespecial(class, name, desc string) *CodeBuilder {
	return b.U2(bytecode.Invokespecial, b.pool.AddMethodref(class, name, desc))
}

// Invokestatic emits an invokestatic against a method reference.
func (b *CodeBuilder) Invokestatic(class, name, desc string) *CodeBuilder {
	return b.U2(bytecode.Invokestatic, b.pool.AddMethodref(class, name, desc))
}

// New emits a new instruction for the named class.
func (b *CodeBuilder) New(class string) *CodeBuilder {
	return b.U2(bytecode.New, b.pool.AddClass(class))
}

// Checkcast emits a checkcast for the named class.
func (b *CodeBuilder) Checkcast(class string) *CodeBuilder {
	return b.U2(bytecode.Checkcast, b.pool.AddClass(class))
}

// Handler records an exception-table entry.
func (b *CodeBuilder) Handler(startPC, endPC, handlerPC int, catchType string) *CodeBuilder {
	var ct uint16
	if catchType != "" {
		ct = b.pool.AddClass(catchType)
	}
	b.handlers = append(b.handlers, ExceptionHandler{
		StartPC:   uint16(startPC),
		EndPC:     uint16(endPC),
		HandlerPC: uint16(handlerPC),
		CatchType: ct,
	})
	return b
}

// Build returns the finished Code attribute. If max values were not set
// explicitly, generous defaults based on code length are used; the
// verifier in internal/jvm recomputes real stack usage anyway.
func (b *CodeBuilder) Build() *CodeAttr {
	ms, ml := b.maxStack, b.maxLocals
	if ms == 0 {
		ms = 8
	}
	if ml == 0 {
		ml = 8
	}
	return &CodeAttr{
		MaxStack:  ms,
		MaxLocals: ml,
		Code:      append([]byte(nil), b.code...),
		Handlers:  append([]ExceptionHandler(nil), b.handlers...),
	}
}

// AttachStandardMain appends the fuzzing harness main method the paper
// describes (§2.2.1): a public static void main(String[]) that prints a
// completion message, so a mutant either runs it or fails earlier in
// the startup pipeline.
func AttachStandardMain(f *File, message string) {
	cb := NewCodeBuilder(f.Pool)
	cb.Getstatic("java/lang/System", "out", "Ljava/io/PrintStream;").
		Ldc(message).
		Invokevirtual("java/io/PrintStream", "println", "(Ljava/lang/String;)V").
		Op(bytecode.Return)
	cb.SetMaxStack(2).SetMaxLocals(1)
	m := f.AddMethod(AccPublic|AccStatic, "main", "([Ljava/lang/String;)V")
	m.Attributes = append(m.Attributes, cb.Build())
}

// AttachDefaultInit appends the canonical no-arg constructor calling
// super.<init>.
func AttachDefaultInit(f *File) {
	super := f.SuperName()
	if super == "" {
		super = "java/lang/Object"
	}
	cb := NewCodeBuilder(f.Pool)
	cb.Op(bytecode.Aload0).
		Invokespecial(super, "<init>", "()V").
		Op(bytecode.Return)
	cb.SetMaxStack(1).SetMaxLocals(1)
	m := f.AddMethod(AccPublic, "<init>", "()V")
	m.Attributes = append(m.Attributes, cb.Build())
}
