package classfile

import (
	"fmt"
)

// Magic is the classfile magic number.
const Magic = 0xCAFEBABE

// Well-known major version numbers.
const (
	MajorJava5 = 49
	MajorJava6 = 50
	MajorJava7 = 51
	MajorJava8 = 52
	MajorJava9 = 53
)

// File is a parsed classfile: the this_class structure plus its constant
// pool, member tables and attributes. All indices refer into Pool.
type File struct {
	Minor uint16
	Major uint16
	Pool  *ConstPool

	AccessFlags Flags
	ThisClass   uint16 // Class entry
	SuperClass  uint16 // Class entry; 0 only for java/lang/Object
	Interfaces  []uint16

	Fields     []*Member
	Methods    []*Member
	Attributes []Attribute

	// memberArena chunk-allocates Members built through the
	// AddField/AddMethod/Clone/parse paths (one heap object per chunk
	// instead of per member — member tables dominate the builder's
	// allocation profile). Chunks are replaced when full, never
	// regrown, so handed-out pointers stay valid for the life of the
	// file.
	memberArena []Member
}

// allocMember places m in the file's arena and returns a stable pointer.
func (f *File) allocMember(m Member) *Member {
	if len(f.memberArena) == cap(f.memberArena) {
		// Small first chunk, bigger follow-ups for member-heavy classes.
		n := 16
		if cap(f.memberArena) >= 16 {
			n = 64
		}
		f.memberArena = make([]Member, 0, n)
	}
	f.memberArena = append(f.memberArena, m)
	return &f.memberArena[len(f.memberArena)-1]
}

// Member is a field_info or method_info structure.
type Member struct {
	AccessFlags Flags
	NameIndex   uint16
	DescIndex   uint16
	Attributes  []Attribute
}

// New creates an empty public class with the standard version-51 header
// and a superclass of java/lang/Object.
func New(internalName string) *File {
	f := &File{
		Minor: 0,
		Major: MajorJava7,
		Pool:  NewConstPool(),
	}
	f.AccessFlags = AccPublic | AccSuper
	f.ThisClass = f.Pool.AddClass(internalName)
	f.SuperClass = f.Pool.AddClass("java/lang/Object")
	return f
}

// Name returns the internal name of this class, or "" when the
// this_class index is dangling.
func (f *File) Name() string {
	n, _ := f.Pool.ClassName(f.ThisClass)
	return n
}

// SuperName returns the internal name of the superclass, "" for none.
func (f *File) SuperName() string {
	if f.SuperClass == 0 {
		return ""
	}
	n, _ := f.Pool.ClassName(f.SuperClass)
	return n
}

// InterfaceNames resolves the interface table to internal names;
// unresolvable entries appear as "".
func (f *File) InterfaceNames() []string {
	out := make([]string, len(f.Interfaces))
	for i, idx := range f.Interfaces {
		out[i], _ = f.Pool.ClassName(idx)
	}
	return out
}

// IsInterface reports whether ACC_INTERFACE is set.
func (f *File) IsInterface() bool { return f.AccessFlags.Has(AccInterface) }

// Name returns the member's name via the pool.
func (m *Member) Name(cp *ConstPool) string {
	n, _ := cp.Utf8(m.NameIndex)
	return n
}

// Descriptor returns the member's descriptor via the pool.
func (m *Member) Descriptor(cp *ConstPool) string {
	d, _ := cp.Utf8(m.DescIndex)
	return d
}

// Code returns the member's Code attribute, or nil.
func (m *Member) Code() *CodeAttr {
	for _, a := range m.Attributes {
		if c, ok := a.(*CodeAttr); ok {
			return c
		}
	}
	return nil
}

// Exceptions returns the member's Exceptions attribute, or nil.
func (m *Member) Exceptions() *ExceptionsAttr {
	for _, a := range m.Attributes {
		if e, ok := a.(*ExceptionsAttr); ok {
			return e
		}
	}
	return nil
}

// RemoveAttribute deletes all attributes with the given name.
func (m *Member) RemoveAttribute(cp *ConstPool, name string) {
	out := m.Attributes[:0]
	for _, a := range m.Attributes {
		if a.AttrName() != name {
			out = append(out, a)
		}
	}
	m.Attributes = out
}

// FindMethod returns the first method with the given name (any
// descriptor), or nil.
func (f *File) FindMethod(name string) *Member {
	for _, m := range f.Methods {
		if m.Name(f.Pool) == name {
			return m
		}
	}
	return nil
}

// FindMethodExact returns the method with the given name and descriptor,
// or nil.
func (f *File) FindMethodExact(name, desc string) *Member {
	for _, m := range f.Methods {
		if m.Name(f.Pool) == name && m.Descriptor(f.Pool) == desc {
			return m
		}
	}
	return nil
}

// FindField returns the first field with the given name, or nil.
func (f *File) FindField(name string) *Member {
	for _, fl := range f.Fields {
		if fl.Name(f.Pool) == name {
			return fl
		}
	}
	return nil
}

// SetSuper rewrites the superclass to the named class.
func (f *File) SetSuper(internalName string) {
	f.SuperClass = f.Pool.AddClass(internalName)
}

// AddInterface appends an implemented interface by name.
func (f *File) AddInterface(internalName string) {
	f.Interfaces = append(f.Interfaces, f.Pool.AddClass(internalName))
}

// AddField appends a new field and returns it.
func (f *File) AddField(flags Flags, name, desc string) *Member {
	m := f.allocMember(Member{
		AccessFlags: flags,
		NameIndex:   f.Pool.AddUtf8(name),
		DescIndex:   f.Pool.AddUtf8(desc),
	})
	f.Fields = append(f.Fields, m)
	return m
}

// AddMethod appends a new method (without a Code attribute) and returns it.
func (f *File) AddMethod(flags Flags, name, desc string) *Member {
	m := f.allocMember(Member{
		AccessFlags: flags,
		NameIndex:   f.Pool.AddUtf8(name),
		DescIndex:   f.Pool.AddUtf8(desc),
	})
	f.Methods = append(f.Methods, m)
	return m
}

// Clone returns a deep copy of the classfile so a mutation can be
// applied without touching the original.
func (f *File) Clone() *File {
	out := &File{
		Minor:       f.Minor,
		Major:       f.Major,
		Pool:        f.Pool.Clone(),
		AccessFlags: f.AccessFlags,
		ThisClass:   f.ThisClass,
		SuperClass:  f.SuperClass,
		Interfaces:  append([]uint16(nil), f.Interfaces...),
	}
	out.Fields = out.cloneMembers(f.Fields)
	out.Methods = out.cloneMembers(f.Methods)
	out.Attributes = cloneAttrs(f.Attributes)
	return out
}

func (f *File) cloneMembers(ms []*Member) []*Member {
	out := make([]*Member, len(ms))
	for i, m := range ms {
		out[i] = f.allocMember(Member{
			AccessFlags: m.AccessFlags,
			NameIndex:   m.NameIndex,
			DescIndex:   m.DescIndex,
			Attributes:  cloneAttrs(m.Attributes),
		})
	}
	return out
}

func cloneAttrs(as []Attribute) []Attribute {
	out := make([]Attribute, len(as))
	for i, a := range as {
		out[i] = a.CloneAttr()
	}
	return out
}

// FormatError reports a structurally malformed classfile during parsing.
type FormatError struct {
	Offset int
	Reason string
}

func (e *FormatError) Error() string {
	return fmt.Sprintf("classfile: format error at offset %d: %s", e.Offset, e.Reason)
}
