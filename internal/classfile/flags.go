package classfile

import "strings"

// Flags is an access_flags bitmask for classes, fields or methods.
type Flags uint16

// Access and property flags (JVMS Tables 4.1-A, 4.5-A, 4.6-A).
const (
	AccPublic       Flags = 0x0001
	AccPrivate      Flags = 0x0002
	AccProtected    Flags = 0x0004
	AccStatic       Flags = 0x0008
	AccFinal        Flags = 0x0010
	AccSuper        Flags = 0x0020 // classes
	AccSynchronized Flags = 0x0020 // methods
	AccVolatile     Flags = 0x0040 // fields
	AccBridge       Flags = 0x0040 // methods
	AccTransient    Flags = 0x0080 // fields
	AccVarargs      Flags = 0x0080 // methods
	AccNative       Flags = 0x0100 // methods
	AccInterface    Flags = 0x0200 // classes
	AccAbstract     Flags = 0x0400
	AccStrict       Flags = 0x0800 // methods
	AccSynthetic    Flags = 0x1000
	AccAnnotation   Flags = 0x2000 // classes
	AccEnum         Flags = 0x4000
)

// Has reports whether all bits of f2 are set in f.
func (f Flags) Has(f2 Flags) bool { return f&f2 == f2 }

// With returns f with the bits of f2 set.
func (f Flags) With(f2 Flags) Flags { return f | f2 }

// Without returns f with the bits of f2 cleared.
func (f Flags) Without(f2 Flags) Flags { return f &^ f2 }

// VisibilityCount returns how many of public/private/protected are set
// (at most one is legal).
func (f Flags) VisibilityCount() int {
	n := 0
	for _, v := range []Flags{AccPublic, AccPrivate, AccProtected} {
		if f.Has(v) {
			n++
		}
	}
	return n
}

type flagName struct {
	bit  Flags
	name string
}

var classFlagNames = []flagName{
	{AccPublic, "ACC_PUBLIC"}, {AccFinal, "ACC_FINAL"}, {AccSuper, "ACC_SUPER"},
	{AccInterface, "ACC_INTERFACE"}, {AccAbstract, "ACC_ABSTRACT"},
	{AccSynthetic, "ACC_SYNTHETIC"}, {AccAnnotation, "ACC_ANNOTATION"}, {AccEnum, "ACC_ENUM"},
}

var fieldFlagNames = []flagName{
	{AccPublic, "ACC_PUBLIC"}, {AccPrivate, "ACC_PRIVATE"}, {AccProtected, "ACC_PROTECTED"},
	{AccStatic, "ACC_STATIC"}, {AccFinal, "ACC_FINAL"}, {AccVolatile, "ACC_VOLATILE"},
	{AccTransient, "ACC_TRANSIENT"}, {AccSynthetic, "ACC_SYNTHETIC"}, {AccEnum, "ACC_ENUM"},
}

var methodFlagNames = []flagName{
	{AccPublic, "ACC_PUBLIC"}, {AccPrivate, "ACC_PRIVATE"}, {AccProtected, "ACC_PROTECTED"},
	{AccStatic, "ACC_STATIC"}, {AccFinal, "ACC_FINAL"}, {AccSynchronized, "ACC_SYNCHRONIZED"},
	{AccBridge, "ACC_BRIDGE"}, {AccVarargs, "ACC_VARARGS"}, {AccNative, "ACC_NATIVE"},
	{AccAbstract, "ACC_ABSTRACT"}, {AccStrict, "ACC_STRICT"}, {AccSynthetic, "ACC_SYNTHETIC"},
}

func describeFlags(f Flags, names []flagName) string {
	var parts []string
	for _, fn := range names {
		if f.Has(fn.bit) {
			parts = append(parts, fn.name)
		}
	}
	return strings.Join(parts, ", ")
}

// ClassFlagString renders f using class-context names.
func (f Flags) ClassFlagString() string { return describeFlags(f, classFlagNames) }

// FieldFlagString renders f using field-context names.
func (f Flags) FieldFlagString() string { return describeFlags(f, fieldFlagNames) }

// MethodFlagString renders f using method-context names.
func (f Flags) MethodFlagString() string { return describeFlags(f, methodFlagNames) }
