package classfile

import (
	"bytes"
	"testing"
)

func TestAnnotationsRoundTrip(t *testing.T) {
	f := New("AnnHost")
	AttachDefaultInit(f)
	typeIdx := f.Pool.AddUtf8("Ljava/lang/Deprecated;")
	nameIdx := f.Pool.AddUtf8("value")
	strIdx := f.Pool.AddUtf8("why")
	enumT := f.Pool.AddUtf8("Ljava/lang/annotation/RetentionPolicy;")
	enumN := f.Pool.AddUtf8("RUNTIME")
	clsIdx := f.Pool.AddUtf8("Ljava/lang/String;")
	intIdx := f.Pool.AddInteger(7)

	nested := &Annotation{TypeIndex: typeIdx}
	ann := Annotation{
		TypeIndex: typeIdx,
		Elements: []ElementPair{
			{NameIndex: nameIdx, Value: ElementValue{Tag: 's', ConstIndex: strIdx}},
			{NameIndex: nameIdx, Value: ElementValue{Tag: 'I', ConstIndex: intIdx}},
			{NameIndex: nameIdx, Value: ElementValue{Tag: 'e', EnumType: enumT, EnumName: enumN}},
			{NameIndex: nameIdx, Value: ElementValue{Tag: 'c', ClassInfo: clsIdx}},
			{NameIndex: nameIdx, Value: ElementValue{Tag: '@', Nested: nested}},
			{NameIndex: nameIdx, Value: ElementValue{Tag: '[', Array: []ElementValue{
				{Tag: 'I', ConstIndex: intIdx},
				{Tag: 's', ConstIndex: strIdx},
			}}},
		},
	}
	f.Attributes = append(f.Attributes, &AnnotationsAttr{Visible: true, Annotations: []Annotation{ann}})
	f.Methods[0].Attributes = append(f.Methods[0].Attributes,
		&AnnotationsAttr{Visible: false, Annotations: []Annotation{{TypeIndex: typeIdx}}})

	data, err := f.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	g, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	var got *AnnotationsAttr
	for _, a := range g.Attributes {
		if an, ok := a.(*AnnotationsAttr); ok {
			got = an
		}
	}
	if got == nil || !got.Visible {
		t.Fatal("class-level RuntimeVisibleAnnotations lost")
	}
	if len(got.Annotations) != 1 || len(got.Annotations[0].Elements) != 6 {
		t.Fatalf("annotation shape lost: %+v", got)
	}
	els := got.Annotations[0].Elements
	if els[0].Value.Tag != 's' || els[0].Value.ConstIndex != strIdx {
		t.Error("string element lost")
	}
	if els[2].Value.EnumName != enumN {
		t.Error("enum element lost")
	}
	if els[4].Value.Nested == nil || els[4].Value.Nested.TypeIndex != typeIdx {
		t.Error("nested annotation lost")
	}
	if len(els[5].Value.Array) != 2 || els[5].Value.Array[1].Tag != 's' {
		t.Error("array element lost")
	}

	var mGot *AnnotationsAttr
	for _, a := range g.Methods[0].Attributes {
		if an, ok := a.(*AnnotationsAttr); ok {
			mGot = an
		}
	}
	if mGot == nil || mGot.Visible {
		t.Fatal("method-level RuntimeInvisibleAnnotations lost")
	}

	// Stability.
	data2, err := g.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Error("annotations serialisation not stable")
	}
}

func TestAnnotationsCloneIsDeep(t *testing.T) {
	inner := &Annotation{TypeIndex: 3}
	a := &AnnotationsAttr{Visible: true, Annotations: []Annotation{{
		TypeIndex: 1,
		Elements: []ElementPair{{NameIndex: 2, Value: ElementValue{Tag: '@', Nested: inner}},
			{NameIndex: 2, Value: ElementValue{Tag: '[', Array: []ElementValue{{Tag: 'I', ConstIndex: 5}}}}},
	}}}
	c := a.CloneAttr().(*AnnotationsAttr)
	c.Annotations[0].Elements[0].Value.Nested.TypeIndex = 99
	c.Annotations[0].Elements[1].Value.Array[0].ConstIndex = 99
	if inner.TypeIndex != 3 {
		t.Error("nested annotation aliased across clone")
	}
	if a.Annotations[0].Elements[1].Value.Array[0].ConstIndex != 5 {
		t.Error("array aliased across clone")
	}
}

func TestAnnotationsRejectBadTag(t *testing.T) {
	f := New("AnnBad")
	f.Attributes = append(f.Attributes, &RawAttr{
		Name: AttrRuntimeVisibleAnnotations,
		Data: []byte{0x00, 0x01, 0x00, 0x01, 0x00, 0x01, 0x00, 0x01, 'q', 0x00, 0x01},
	})
	f.Pool.AddUtf8(AttrRuntimeVisibleAnnotations)
	data, err := f.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Parse(data); err == nil {
		t.Error("unknown element_value tag must be rejected")
	}
}

func TestBootstrapMethodsRoundTrip(t *testing.T) {
	f := New("BsmHost")
	mh := f.Pool.add(&Constant{Tag: TagMethodHandle, Kind: 6, Ref1: f.Pool.AddMethodref("java/lang/Object", "toString", "()Ljava/lang/String;")})
	arg := f.Pool.AddString("x")
	f.Attributes = append(f.Attributes, &BootstrapMethodsAttr{Methods: []BootstrapMethod{
		{MethodRef: mh, Args: []uint16{arg}},
		{MethodRef: mh},
	}})
	data, err := f.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	g, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	var got *BootstrapMethodsAttr
	for _, a := range g.Attributes {
		if b, ok := a.(*BootstrapMethodsAttr); ok {
			got = b
		}
	}
	if got == nil || len(got.Methods) != 2 {
		t.Fatal("BootstrapMethods lost")
	}
	if got.Methods[0].MethodRef != mh || len(got.Methods[0].Args) != 1 || got.Methods[0].Args[0] != arg {
		t.Errorf("entry 0 lost: %+v", got.Methods[0])
	}
	clone := got.CloneAttr().(*BootstrapMethodsAttr)
	clone.Methods[0].Args[0] = 9999
	if got.Methods[0].Args[0] == 9999 {
		t.Error("clone aliased args")
	}
}
