package classfile

import (
	"fmt"
	"strings"

	"repro/internal/bytecode"
	"repro/internal/descriptor"
)

// Dump renders the classfile in a javap -v style for humans, matching
// the shape of Figure 2 in the paper. It tolerates malformed classes
// (dangling indices render as placeholders) because its main use is
// inspecting fuzzing mutants.
func (f *File) Dump() string {
	var b strings.Builder
	name := f.Name()
	if name == "" {
		name = fmt.Sprintf("<bad this_class #%d>", f.ThisClass)
	}
	kw := "class"
	if f.IsInterface() {
		kw = "interface"
	}
	fmt.Fprintf(&b, "%s %s", kw, strings.ReplaceAll(name, "/", "."))
	if s := f.SuperName(); s != "" && s != "java/lang/Object" {
		fmt.Fprintf(&b, " extends %s", strings.ReplaceAll(s, "/", "."))
	}
	if len(f.Interfaces) > 0 {
		var ifs []string
		for _, n := range f.InterfaceNames() {
			if n == "" {
				n = "<bad>"
			}
			ifs = append(ifs, strings.ReplaceAll(n, "/", "."))
		}
		fmt.Fprintf(&b, " implements %s", strings.Join(ifs, ", "))
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "  minor version: %d\n", f.Minor)
	fmt.Fprintf(&b, "  major version: %d\n", f.Major)
	fmt.Fprintf(&b, "  flags: %s\n", f.AccessFlags.ClassFlagString())
	b.WriteString("Constant pool:\n")
	for i := 1; i < f.Pool.Count(); i++ {
		if f.Pool.Entries[i] == nil {
			continue
		}
		fmt.Fprintf(&b, "  #%d = %s\n", i, f.Pool.Describe(uint16(i)))
	}
	b.WriteString("{\n")
	for _, fl := range f.Fields {
		fmt.Fprintf(&b, "  %s %s;\n", fieldDecl(f.Pool, fl), fl.Name(f.Pool))
		fmt.Fprintf(&b, "    flags: %s\n", fl.AccessFlags.FieldFlagString())
	}
	for _, m := range f.Methods {
		fmt.Fprintf(&b, "  %s;\n", methodDecl(f.Pool, m))
		fmt.Fprintf(&b, "    flags: %s\n", m.AccessFlags.MethodFlagString())
		if ex := m.Exceptions(); ex != nil && len(ex.Classes) > 0 {
			var names []string
			for _, c := range ex.Classes {
				n, _ := f.Pool.ClassName(c)
				if n == "" {
					n = fmt.Sprintf("<bad #%d>", c)
				}
				names = append(names, strings.ReplaceAll(n, "/", "."))
			}
			fmt.Fprintf(&b, "    throws: %s\n", strings.Join(names, ", "))
		}
		if c := m.Code(); c != nil {
			fmt.Fprintf(&b, "    Code:\n      stack=%d, locals=%d\n", c.MaxStack, c.MaxLocals)
			ins, err := bytecode.Decode(c.Code)
			if err != nil {
				fmt.Fprintf(&b, "      <undecodable: %v>\n", err)
			} else {
				for _, in := range ins {
					fmt.Fprintf(&b, "      %s%s\n", in.String(), cpComment(f.Pool, in))
				}
			}
			for _, h := range c.Handlers {
				ct := "any"
				if h.CatchType != 0 {
					ct, _ = f.Pool.ClassName(h.CatchType)
				}
				fmt.Fprintf(&b, "      handler: [%d,%d) -> %d catch %s\n", h.StartPC, h.EndPC, h.HandlerPC, ct)
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}

func fieldDecl(cp *ConstPool, m *Member) string {
	d := m.Descriptor(cp)
	t, err := descriptor.ParseField(d)
	typ := d
	if err == nil {
		typ = t.Java()
	}
	mods := strings.ToLower(strings.ReplaceAll(m.AccessFlags.FieldFlagString(), "ACC_", ""))
	mods = strings.ReplaceAll(mods, ",", "")
	if mods != "" {
		return mods + " " + typ
	}
	return typ
}

func methodDecl(cp *ConstPool, m *Member) string {
	d := m.Descriptor(cp)
	name := m.Name(cp)
	md, err := descriptor.ParseMethod(d)
	if err != nil {
		return fmt.Sprintf("%s%s", name, d)
	}
	var params []string
	for _, p := range md.Params {
		params = append(params, p.Java())
	}
	mods := strings.ToLower(strings.ReplaceAll(m.AccessFlags.MethodFlagString(), "ACC_", ""))
	mods = strings.ReplaceAll(mods, ",", "")
	decl := fmt.Sprintf("%s %s(%s)", md.Return.Java(), name, strings.Join(params, ", "))
	if mods != "" {
		return mods + " " + decl
	}
	return decl
}

func cpComment(cp *ConstPool, in *bytecode.Instruction) string {
	info, _ := bytecode.Lookup(in.Op)
	switch info.Kind {
	case bytecode.OpCPByte, bytecode.OpCPShort, bytecode.OpInvokeInterface, bytecode.OpInvokeDynamic, bytecode.OpMultianewarray:
		if cp.Valid(in.CPIndex) {
			return " // " + cp.Describe(in.CPIndex)
		}
		return " // <dangling>"
	}
	return ""
}
