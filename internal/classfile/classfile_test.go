package classfile

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// buildSample constructs a small class resembling the paper's Figure 2:
// a class with <clinit>, <init>, one field, and the standard main.
func buildSample() *File {
	f := New("M1436188543")
	f.AddField(AccProtected|AccFinal, "MAP", "Ljava/util/Map;")
	AttachDefaultInit(f)
	AttachStandardMain(f, "Completed!")
	clinit := f.AddMethod(AccStatic, "<clinit>", "()V")
	cb := NewCodeBuilder(f.Pool)
	cb.Op(0xb1) // return
	cb.SetMaxStack(0).SetMaxLocals(0)
	clinit.Attributes = append(clinit.Attributes, cb.Build())
	f.Attributes = append(f.Attributes, &SourceFileAttr{NameIndex: f.Pool.AddUtf8("M1436188543.java")})
	return f
}

func TestNewDefaults(t *testing.T) {
	f := New("pkg/Cls")
	if f.Name() != "pkg/Cls" {
		t.Errorf("Name = %q", f.Name())
	}
	if f.SuperName() != "java/lang/Object" {
		t.Errorf("Super = %q", f.SuperName())
	}
	if f.Major != MajorJava7 {
		t.Errorf("Major = %d", f.Major)
	}
	if !f.AccessFlags.Has(AccPublic | AccSuper) {
		t.Error("missing default flags")
	}
}

func TestSerialiseParseRoundTrip(t *testing.T) {
	f := buildSample()
	data, err := f.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	g, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name() != f.Name() || g.SuperName() != f.SuperName() {
		t.Error("identity lost in round trip")
	}
	if len(g.Fields) != 1 || len(g.Methods) != 3 {
		t.Fatalf("members = %d fields, %d methods", len(g.Fields), len(g.Methods))
	}
	if g.Fields[0].Name(g.Pool) != "MAP" || g.Fields[0].Descriptor(g.Pool) != "Ljava/util/Map;" {
		t.Error("field lost")
	}
	main := g.FindMethodExact("main", "([Ljava/lang/String;)V")
	if main == nil {
		t.Fatal("main missing")
	}
	if main.Code() == nil {
		t.Fatal("main Code attribute missing")
	}
	if main.Code().MaxStack != 2 || main.Code().MaxLocals != 1 {
		t.Error("code header lost")
	}
	// Second serialisation must be byte-identical (stability).
	data2, err := g.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Error("serialisation not stable")
	}
}

func TestParseRejectsBadMagic(t *testing.T) {
	f := buildSample()
	data, _ := f.Bytes()
	data[0] = 0xDE
	if _, err := Parse(data); err == nil {
		t.Error("bad magic must be rejected")
	}
}

func TestParseRejectsTruncation(t *testing.T) {
	f := buildSample()
	data, _ := f.Bytes()
	for _, cut := range []int{1, 4, 9, 20, len(data) / 2, len(data) - 1} {
		if _, err := Parse(data[:cut]); err == nil {
			t.Errorf("truncation at %d must be rejected", cut)
		}
	}
}

func TestParseRejectsTrailingBytes(t *testing.T) {
	f := buildSample()
	data, _ := f.Bytes()
	if _, err := Parse(append(data, 0x00)); err == nil {
		t.Error("trailing bytes must be rejected")
	}
}

func TestParseRejectsUnknownConstantTag(t *testing.T) {
	f := buildSample()
	data, _ := f.Bytes()
	// First tag byte sits right after magic+versions+count = offset 10.
	data[10] = 99
	if _, err := Parse(data); err == nil {
		t.Error("unknown constant tag must be rejected")
	}
}

func TestWideConstantsOccupyTwoSlots(t *testing.T) {
	f := New("C")
	li := f.Pool.AddLong(1 << 40)
	di := f.Pool.AddDouble(3.14)
	if f.Pool.Get(li+1) != nil {
		t.Error("slot after long must be nil")
	}
	if f.Pool.Get(di+1) != nil {
		t.Error("slot after double must be nil")
	}
	data, err := f.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	g, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if c := g.Pool.Get(li); c == nil || c.Long != 1<<40 {
		t.Error("long value lost")
	}
	if c := g.Pool.Get(di); c == nil || c.Double != 3.14 {
		t.Error("double value lost")
	}
}

func TestConstPoolInterning(t *testing.T) {
	cp := NewConstPool()
	a := cp.AddUtf8("hello")
	b := cp.AddUtf8("hello")
	if a != b {
		t.Error("Utf8 not interned")
	}
	c1 := cp.AddClass("java/lang/Object")
	c2 := cp.AddClass("java/lang/Object")
	if c1 != c2 {
		t.Error("Class not interned")
	}
	m1 := cp.AddMethodref("A", "m", "()V")
	m2 := cp.AddMethodref("A", "m", "()V")
	if m1 != m2 {
		t.Error("Methodref not interned")
	}
	f1 := cp.AddFieldref("A", "m", "()V")
	if f1 == m1 {
		t.Error("Fieldref and Methodref must be distinct entries")
	}
}

func TestMemberRefResolution(t *testing.T) {
	cp := NewConstPool()
	idx := cp.AddMethodref("java/io/PrintStream", "println", "(Ljava/lang/String;)V")
	cls, name, desc, ok := cp.MemberRef(idx)
	if !ok || cls != "java/io/PrintStream" || name != "println" || desc != "(Ljava/lang/String;)V" {
		t.Errorf("MemberRef = %q %q %q %v", cls, name, desc, ok)
	}
	if _, _, _, ok := cp.MemberRef(0); ok {
		t.Error("index 0 must not resolve")
	}
}

func TestExceptionsAttrRoundTrip(t *testing.T) {
	f := New("C")
	m := f.AddMethod(AccPublic, "m", "()V")
	ex := &ExceptionsAttr{Classes: []uint16{f.Pool.AddClass("java/lang/Exception"), f.Pool.AddClass("java/io/IOException")}}
	m.Attributes = append(m.Attributes, ex)
	data, err := f.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	g, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	got := g.Methods[0].Exceptions()
	if got == nil || len(got.Classes) != 2 {
		t.Fatal("Exceptions attribute lost")
	}
	n, _ := g.Pool.ClassName(got.Classes[1])
	if n != "java/io/IOException" {
		t.Errorf("second exception = %q", n)
	}
}

func TestExceptionHandlersRoundTrip(t *testing.T) {
	f := New("C")
	cb := NewCodeBuilder(f.Pool)
	cb.Op(0xb1)
	cb.Handler(0, 1, 0, "java/lang/Throwable")
	cb.Handler(0, 1, 0, "") // catch-all
	m := f.AddMethod(AccPublic|AccStatic, "m", "()V")
	m.Attributes = append(m.Attributes, cb.Build())
	data, _ := f.Bytes()
	g, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	hs := g.Methods[0].Code().Handlers
	if len(hs) != 2 {
		t.Fatalf("handlers = %d", len(hs))
	}
	if hs[1].CatchType != 0 {
		t.Error("catch-all type must stay 0")
	}
}

func TestUnknownAttributePreserved(t *testing.T) {
	f := New("C")
	f.Attributes = append(f.Attributes, &RawAttr{Name: "MadeUpAttr", Data: []byte{1, 2, 3, 4}})
	f.Pool.AddUtf8("MadeUpAttr")
	data, _ := f.Bytes()
	g, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	var found *RawAttr
	for _, a := range g.Attributes {
		if r, ok := a.(*RawAttr); ok && r.Name == "MadeUpAttr" {
			found = r
		}
	}
	if found == nil || !bytes.Equal(found.Data, []byte{1, 2, 3, 4}) {
		t.Error("unknown attribute not preserved")
	}
}

func TestModifiedUTF8(t *testing.T) {
	cases := []string{"", "hello", "héllo", "日本語", "a\x00b", "ࠀ"}
	for _, s := range cases {
		enc := encodeModifiedUTF8(s)
		dec, err := decodeModifiedUTF8(enc)
		if err != nil {
			t.Errorf("decode(%q): %v", s, err)
			continue
		}
		if dec != s {
			t.Errorf("round trip %q -> %q", s, dec)
		}
	}
	// Embedded raw NUL is illegal in modified UTF-8.
	if _, err := decodeModifiedUTF8([]byte{0x00}); err == nil {
		t.Error("raw NUL must be rejected")
	}
	if _, err := decodeModifiedUTF8([]byte{0xC0}); err == nil {
		t.Error("truncated sequence must be rejected")
	}
	if _, err := decodeModifiedUTF8([]byte{0xF0, 0x90, 0x80, 0x80}); err == nil {
		t.Error("4-byte UTF-8 is not modified UTF-8")
	}
}

func TestCloneIsDeep(t *testing.T) {
	f := buildSample()
	g := f.Clone()
	g.SetSuper("java/lang/Thread")
	g.Methods[0].AccessFlags |= AccStatic
	g.Pool.AddUtf8("extra")
	if f.SuperName() != "java/lang/Object" {
		t.Error("clone shares superclass state")
	}
	if f.Methods[0].AccessFlags.Has(AccStatic) {
		t.Error("clone shares member flags")
	}
}

func TestFlagsHelpers(t *testing.T) {
	f := AccPublic | AccStatic
	if !f.Has(AccPublic) || f.Has(AccFinal) {
		t.Error("Has wrong")
	}
	if !f.With(AccFinal).Has(AccFinal) {
		t.Error("With wrong")
	}
	if f.Without(AccStatic).Has(AccStatic) {
		t.Error("Without wrong")
	}
	if (AccPublic | AccPrivate).VisibilityCount() != 2 {
		t.Error("VisibilityCount wrong")
	}
	if got := (AccPublic | AccAbstract).MethodFlagString(); got != "ACC_PUBLIC, ACC_ABSTRACT" {
		t.Errorf("MethodFlagString = %q", got)
	}
	if got := (AccPublic | AccSuper).ClassFlagString(); got != "ACC_PUBLIC, ACC_SUPER" {
		t.Errorf("ClassFlagString = %q", got)
	}
}

func TestDumpContainsStructure(t *testing.T) {
	f := buildSample()
	d := f.Dump()
	for _, want := range []string{"class M1436188543", "major version: 51", "Constant pool:", "main", "<clinit>", "invokevirtual"} {
		if !bytes.Contains([]byte(d), []byte(want)) {
			t.Errorf("dump missing %q", want)
		}
	}
}

// randomClass builds a structurally valid random class for property tests.
func randomClass(rng *rand.Rand) *File {
	f := New("R" + string(rune('A'+rng.Intn(26))))
	nf := rng.Intn(5)
	for i := 0; i < nf; i++ {
		descs := []string{"I", "J", "Ljava/lang/String;", "[B", "D"}
		f.AddField(Flags(rng.Intn(0x10)), "f"+string(rune('a'+i)), descs[rng.Intn(len(descs))])
	}
	nm := rng.Intn(4)
	for i := 0; i < nm; i++ {
		m := f.AddMethod(AccPublic, "m"+string(rune('a'+i)), "()V")
		if rng.Intn(2) == 0 {
			cb := NewCodeBuilder(f.Pool)
			for j := 0; j < rng.Intn(5); j++ {
				cb.LdcInt(int32(rng.Intn(1000) - 500)).Op(0x57) // pop
			}
			cb.Op(0xb1)
			m.Attributes = append(m.Attributes, cb.Build())
		}
	}
	if rng.Intn(2) == 0 {
		AttachStandardMain(f, "ok")
	}
	if rng.Intn(2) == 0 {
		f.AddInterface("java/io/Serializable")
	}
	f.Pool.AddLong(int64(rng.Uint64()))
	f.Pool.AddDouble(rng.Float64())
	return f
}

// TestPropertySerialiseParseIdentity: Parse∘Bytes preserves Bytes output.
func TestPropertySerialiseParseIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cls := randomClass(rng)
		data, err := cls.Bytes()
		if err != nil {
			return false
		}
		parsed, err := Parse(data)
		if err != nil {
			return false
		}
		data2, err := parsed.Bytes()
		if err != nil {
			return false
		}
		return bytes.Equal(data, data2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestPropertyParseNeverPanics: arbitrary byte soup must produce an
// error, never a panic or a hang.
func TestPropertyParseNeverPanics(t *testing.T) {
	f := func(data []byte) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
			}
		}()
		Parse(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestPropertyParseMutatedBytesNeverPanics: flip bytes of a valid class.
func TestPropertyParseMutatedBytesNeverPanics(t *testing.T) {
	base, err := buildSample().Bytes()
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
			}
		}()
		rng := rand.New(rand.NewSource(seed))
		data := append([]byte(nil), base...)
		for i := 0; i < 1+rng.Intn(8); i++ {
			data[rng.Intn(len(data))] = byte(rng.Intn(256))
		}
		Parse(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
