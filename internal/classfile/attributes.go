package classfile

// Attribute is one attribute_info structure. Concrete types model the
// attributes the startup pipeline cares about; everything else is kept
// as a RawAttr so unknown attributes survive a parse/serialise
// round-trip byte-for-byte.
type Attribute interface {
	// AttrName returns the attribute's name ("Code", "Exceptions", ...).
	AttrName() string
	// CloneAttr returns a deep copy.
	CloneAttr() Attribute
}

// Attribute name constants.
const (
	AttrCode               = "Code"
	AttrExceptions         = "Exceptions"
	AttrConstantValue      = "ConstantValue"
	AttrSourceFile         = "SourceFile"
	AttrInnerClasses       = "InnerClasses"
	AttrLineNumberTable    = "LineNumberTable"
	AttrLocalVariableTable = "LocalVariableTable"
	AttrStackMapTable      = "StackMapTable"
	AttrSynthetic          = "Synthetic"
	AttrDeprecated         = "Deprecated"
	AttrSignature          = "Signature"
)

// ExceptionHandler is one exception_table entry in a Code attribute.
type ExceptionHandler struct {
	StartPC   uint16
	EndPC     uint16
	HandlerPC uint16
	CatchType uint16 // Class entry, 0 = catch-all
}

// CodeAttr is the Code attribute: the method body.
type CodeAttr struct {
	MaxStack   uint16
	MaxLocals  uint16
	Code       []byte
	Handlers   []ExceptionHandler
	Attributes []Attribute
}

// AttrName implements Attribute.
func (*CodeAttr) AttrName() string { return AttrCode }

// CloneAttr implements Attribute.
func (c *CodeAttr) CloneAttr() Attribute {
	return &CodeAttr{
		MaxStack:   c.MaxStack,
		MaxLocals:  c.MaxLocals,
		Code:       append([]byte(nil), c.Code...),
		Handlers:   append([]ExceptionHandler(nil), c.Handlers...),
		Attributes: cloneAttrs(c.Attributes),
	}
}

// ExceptionsAttr lists the checked exceptions a method declares to throw.
type ExceptionsAttr struct {
	Classes []uint16 // Class entries
}

// AttrName implements Attribute.
func (*ExceptionsAttr) AttrName() string { return AttrExceptions }

// CloneAttr implements Attribute.
func (e *ExceptionsAttr) CloneAttr() Attribute {
	return &ExceptionsAttr{Classes: append([]uint16(nil), e.Classes...)}
}

// ConstantValueAttr gives a static field its compile-time constant.
type ConstantValueAttr struct {
	ValueIndex uint16
}

// AttrName implements Attribute.
func (*ConstantValueAttr) AttrName() string { return AttrConstantValue }

// CloneAttr implements Attribute.
func (c *ConstantValueAttr) CloneAttr() Attribute { cc := *c; return &cc }

// SourceFileAttr names the source file.
type SourceFileAttr struct {
	NameIndex uint16 // Utf8
}

// AttrName implements Attribute.
func (*SourceFileAttr) AttrName() string { return AttrSourceFile }

// CloneAttr implements Attribute.
func (s *SourceFileAttr) CloneAttr() Attribute { ss := *s; return &ss }

// InnerClassEntry is one classes[] element of InnerClasses.
type InnerClassEntry struct {
	InnerClass uint16 // Class
	OuterClass uint16 // Class or 0
	InnerName  uint16 // Utf8 or 0
	Flags      Flags
}

// InnerClassesAttr records nested-class relationships.
type InnerClassesAttr struct {
	Entries []InnerClassEntry
}

// AttrName implements Attribute.
func (*InnerClassesAttr) AttrName() string { return AttrInnerClasses }

// CloneAttr implements Attribute.
func (a *InnerClassesAttr) CloneAttr() Attribute {
	return &InnerClassesAttr{Entries: append([]InnerClassEntry(nil), a.Entries...)}
}

// LineNumberEntry maps a bytecode pc to a source line.
type LineNumberEntry struct {
	StartPC uint16
	Line    uint16
}

// LineNumberTableAttr is the debug line table inside Code.
type LineNumberTableAttr struct {
	Entries []LineNumberEntry
}

// AttrName implements Attribute.
func (*LineNumberTableAttr) AttrName() string { return AttrLineNumberTable }

// CloneAttr implements Attribute.
func (a *LineNumberTableAttr) CloneAttr() Attribute {
	return &LineNumberTableAttr{Entries: append([]LineNumberEntry(nil), a.Entries...)}
}

// LocalVariableEntry describes one local variable's live range.
type LocalVariableEntry struct {
	StartPC   uint16
	Length    uint16
	NameIndex uint16
	DescIndex uint16
	Slot      uint16
}

// LocalVariableTableAttr is the debug local-variable table inside Code.
type LocalVariableTableAttr struct {
	Entries []LocalVariableEntry
}

// AttrName implements Attribute.
func (*LocalVariableTableAttr) AttrName() string { return AttrLocalVariableTable }

// CloneAttr implements Attribute.
func (a *LocalVariableTableAttr) CloneAttr() Attribute {
	return &LocalVariableTableAttr{Entries: append([]LocalVariableEntry(nil), a.Entries...)}
}

// StackMapTableAttr keeps the verifier stack-map frames as raw bytes.
// The dataflow verifier in internal/jvm infers types itself (like the
// pre-51 inference verifier), so the frames need not be decoded, but
// they must survive round-trips.
type StackMapTableAttr struct {
	Raw []byte
}

// AttrName implements Attribute.
func (*StackMapTableAttr) AttrName() string { return AttrStackMapTable }

// CloneAttr implements Attribute.
func (a *StackMapTableAttr) CloneAttr() Attribute {
	return &StackMapTableAttr{Raw: append([]byte(nil), a.Raw...)}
}

// SyntheticAttr marks compiler-generated members.
type SyntheticAttr struct{}

// AttrName implements Attribute.
func (*SyntheticAttr) AttrName() string { return AttrSynthetic }

// CloneAttr implements Attribute.
func (a *SyntheticAttr) CloneAttr() Attribute { return &SyntheticAttr{} }

// DeprecatedAttr marks deprecated members.
type DeprecatedAttr struct{}

// AttrName implements Attribute.
func (*DeprecatedAttr) AttrName() string { return AttrDeprecated }

// CloneAttr implements Attribute.
func (a *DeprecatedAttr) CloneAttr() Attribute { return &DeprecatedAttr{} }

// SignatureAttr carries a generic signature string index.
type SignatureAttr struct {
	SigIndex uint16
}

// AttrName implements Attribute.
func (*SignatureAttr) AttrName() string { return AttrSignature }

// CloneAttr implements Attribute.
func (a *SignatureAttr) CloneAttr() Attribute { aa := *a; return &aa }

// RawAttr preserves attributes this package does not model.
type RawAttr struct {
	Name string
	Data []byte
}

// AttrName implements Attribute.
func (r *RawAttr) AttrName() string { return r.Name }

// CloneAttr implements Attribute.
func (r *RawAttr) CloneAttr() Attribute {
	return &RawAttr{Name: r.Name, Data: append([]byte(nil), r.Data...)}
}
