package classfile

import "fmt"

// Structured StackMapTable support (JVMS §4.7.4). The startup pipeline
// verifies by type inference and never consults these frames, but a
// classfile toolchain must still understand them: DecodeStackMap
// parses the frame list out of a StackMapTableAttr and EncodeStackMap
// re-serialises it byte-exactly, so tools can inspect or rewrite maps
// produced by javac/Soot.

// VerificationType tags (JVMS Table 4.7.4-A).
const (
	VTTop               = 0
	VTInteger           = 1
	VTFloat             = 2
	VTDouble            = 3
	VTLong              = 4
	VTNull              = 5
	VTUninitializedThis = 6
	VTObject            = 7
	VTUninitialized     = 8
)

// VerificationTypeInfo is one verification_type_info union value.
type VerificationTypeInfo struct {
	Tag byte
	// CPoolIndex is set for VTObject (a Class constant).
	CPoolIndex uint16
	// Offset is set for VTUninitialized (the pc of the `new`).
	Offset uint16
}

// FrameKind classifies a stack_map_frame entry.
type FrameKind int

// Frame kinds.
const (
	FrameSame FrameKind = iota
	FrameSameLocals1Stack
	FrameSameLocals1StackExtended
	FrameChop
	FrameSameExtended
	FrameAppend
	FrameFull
)

// StackMapFrame is one decoded frame.
type StackMapFrame struct {
	Kind FrameKind
	// OffsetDelta is the encoded delta to the previous frame's pc.
	OffsetDelta uint16
	// Stack holds the single stack item (same_locals_1_stack...) or the
	// full stack (full_frame).
	Stack []VerificationTypeInfo
	// Locals holds the appended locals (append_frame) or all locals
	// (full_frame).
	Locals []VerificationTypeInfo
	// Chopped is the number of absent locals for chop frames (1..3).
	Chopped int
}

// DecodeStackMap parses the raw attribute body into frames.
func DecodeStackMap(a *StackMapTableAttr) ([]StackMapFrame, error) {
	br := &reader{data: a.Raw}
	n := int(br.u2())
	frames := make([]StackMapFrame, 0, n)
	for i := 0; i < n; i++ {
		if br.err != nil {
			return nil, br.err
		}
		ft := br.u1()
		var f StackMapFrame
		switch {
		case ft <= 63:
			f = StackMapFrame{Kind: FrameSame, OffsetDelta: uint16(ft)}
		case ft <= 127:
			f = StackMapFrame{Kind: FrameSameLocals1Stack, OffsetDelta: uint16(ft - 64)}
			v, err := decodeVTI(br)
			if err != nil {
				return nil, err
			}
			f.Stack = []VerificationTypeInfo{v}
		case ft == 247:
			f = StackMapFrame{Kind: FrameSameLocals1StackExtended, OffsetDelta: br.u2()}
			v, err := decodeVTI(br)
			if err != nil {
				return nil, err
			}
			f.Stack = []VerificationTypeInfo{v}
		case ft >= 248 && ft <= 250:
			f = StackMapFrame{Kind: FrameChop, OffsetDelta: br.u2(), Chopped: int(251 - ft)}
		case ft == 251:
			f = StackMapFrame{Kind: FrameSameExtended, OffsetDelta: br.u2()}
		case ft >= 252 && ft <= 254:
			f = StackMapFrame{Kind: FrameAppend, OffsetDelta: br.u2()}
			for k := 0; k < int(ft-251); k++ {
				v, err := decodeVTI(br)
				if err != nil {
					return nil, err
				}
				f.Locals = append(f.Locals, v)
			}
		case ft == 255:
			f = StackMapFrame{Kind: FrameFull, OffsetDelta: br.u2()}
			nl := int(br.u2())
			for k := 0; k < nl; k++ {
				v, err := decodeVTI(br)
				if err != nil {
					return nil, err
				}
				f.Locals = append(f.Locals, v)
			}
			ns := int(br.u2())
			for k := 0; k < ns; k++ {
				v, err := decodeVTI(br)
				if err != nil {
					return nil, err
				}
				f.Stack = append(f.Stack, v)
			}
		default:
			return nil, &FormatError{Offset: br.pos, Reason: fmt.Sprintf("reserved stack_map_frame type %d", ft)}
		}
		if br.err != nil {
			return nil, br.err
		}
		frames = append(frames, f)
	}
	if br.pos != len(a.Raw) {
		return nil, &FormatError{Offset: br.pos, Reason: "trailing bytes in StackMapTable"}
	}
	return frames, nil
}

func decodeVTI(br *reader) (VerificationTypeInfo, error) {
	v := VerificationTypeInfo{Tag: br.u1()}
	switch v.Tag {
	case VTTop, VTInteger, VTFloat, VTDouble, VTLong, VTNull, VTUninitializedThis:
	case VTObject:
		v.CPoolIndex = br.u2()
	case VTUninitialized:
		v.Offset = br.u2()
	default:
		return v, &FormatError{Offset: br.pos, Reason: fmt.Sprintf("invalid verification_type_info tag %d", v.Tag)}
	}
	return v, br.err
}

// EncodeStackMap serialises frames back into a StackMapTableAttr body.
// Frames must be representable in their declared kind (e.g. a Same
// frame's delta must fit in 0..63); EncodeStackMap promotes frames to
// their extended forms when the delta overflows the short form.
func EncodeStackMap(frames []StackMapFrame) *StackMapTableAttr {
	w := &writer{}
	w.u2(uint16(len(frames)))
	for _, f := range frames {
		switch f.Kind {
		case FrameSame:
			if f.OffsetDelta <= 63 {
				w.u1(byte(f.OffsetDelta))
			} else {
				w.u1(251)
				w.u2(f.OffsetDelta)
			}
		case FrameSameExtended:
			w.u1(251)
			w.u2(f.OffsetDelta)
		case FrameSameLocals1Stack:
			if f.OffsetDelta <= 63 {
				w.u1(byte(64 + f.OffsetDelta))
			} else {
				w.u1(247)
				w.u2(f.OffsetDelta)
			}
			encodeVTI(w, first(f.Stack))
		case FrameSameLocals1StackExtended:
			w.u1(247)
			w.u2(f.OffsetDelta)
			encodeVTI(w, first(f.Stack))
		case FrameChop:
			ch := f.Chopped
			if ch < 1 {
				ch = 1
			}
			if ch > 3 {
				ch = 3
			}
			w.u1(byte(251 - ch))
			w.u2(f.OffsetDelta)
		case FrameAppend:
			n := len(f.Locals)
			if n < 1 {
				n = 1
			}
			if n > 3 {
				n = 3
			}
			w.u1(byte(251 + n))
			w.u2(f.OffsetDelta)
			for i := 0; i < n; i++ {
				if i < len(f.Locals) {
					encodeVTI(w, f.Locals[i])
				} else {
					encodeVTI(w, VerificationTypeInfo{Tag: VTTop})
				}
			}
		case FrameFull:
			w.u1(255)
			w.u2(f.OffsetDelta)
			w.u2(uint16(len(f.Locals)))
			for _, v := range f.Locals {
				encodeVTI(w, v)
			}
			w.u2(uint16(len(f.Stack)))
			for _, v := range f.Stack {
				encodeVTI(w, v)
			}
		}
	}
	return &StackMapTableAttr{Raw: w.buf}
}

func first(vs []VerificationTypeInfo) VerificationTypeInfo {
	if len(vs) == 0 {
		return VerificationTypeInfo{Tag: VTTop}
	}
	return vs[0]
}

func encodeVTI(w *writer, v VerificationTypeInfo) {
	w.u1(v.Tag)
	switch v.Tag {
	case VTObject:
		w.u2(v.CPoolIndex)
	case VTUninitialized:
		w.u2(v.Offset)
	}
}
