package classfile

import (
	"encoding/binary"
	"fmt"
	"math"
)

// writer is a growing big-endian buffer.
type writer struct {
	buf []byte
}

func (w *writer) u1(v byte)    { w.buf = append(w.buf, v) }
func (w *writer) u2(v uint16)  { w.buf = binary.BigEndian.AppendUint16(w.buf, v) }
func (w *writer) u4(v uint32)  { w.buf = binary.BigEndian.AppendUint32(w.buf, v) }
func (w *writer) raw(b []byte) { w.buf = append(w.buf, b...) }

// Bytes serialises the classfile back into its binary form. Serialising
// never validates semantics; a File holding illegal constructs produces
// exactly the illegal classfile the fuzzer wants. Errors are only
// returned for shapes the container format cannot express (e.g. more
// than 65535 methods).
func (f *File) Bytes() ([]byte, error) {
	return f.AppendBytes(make([]byte, 0, 1024))
}

// AppendBytes serialises the classfile into buf (appending from
// buf[len(buf):], reusing its capacity) and returns the extended slice.
// The output bytes are identical to Bytes; callers that recycle buffers
// across serialisations use this form to keep the hot path
// allocation-free once the buffer has grown to steady state.
func (f *File) AppendBytes(buf []byte) ([]byte, error) {
	// Intern every attribute name before the pool is serialised, so the
	// name indices written later point into the written pool.
	internAttrNames(f.Pool, f.Attributes)
	for _, m := range f.Fields {
		internAttrNames(f.Pool, m.Attributes)
	}
	for _, m := range f.Methods {
		internAttrNames(f.Pool, m.Attributes)
	}

	w := &writer{buf: buf}
	w.u4(Magic)
	w.u2(f.Minor)
	w.u2(f.Major)

	if f.Pool.Count() > 0xFFFF {
		return nil, fmt.Errorf("classfile: constant pool too large (%d entries)", f.Pool.Count())
	}
	w.u2(uint16(f.Pool.Count()))
	for i := 1; i < len(f.Pool.Entries); i++ {
		c := f.Pool.Entries[i]
		if c == nil {
			continue // trailing slot of a wide constant
		}
		w.u1(byte(c.Tag))
		switch c.Tag {
		case TagUtf8:
			if asciiNoNUL(c.Str) {
				// Fast path: plain ASCII without NUL encodes to its own
				// bytes; append the string directly, no scratch slice.
				if len(c.Str) > 0xFFFF {
					return nil, fmt.Errorf("classfile: Utf8 constant longer than 65535 bytes")
				}
				w.u2(uint16(len(c.Str)))
				w.buf = append(w.buf, c.Str...)
				break
			}
			b := encodeModifiedUTF8(c.Str)
			if len(b) > 0xFFFF {
				return nil, fmt.Errorf("classfile: Utf8 constant longer than 65535 bytes")
			}
			w.u2(uint16(len(b)))
			w.raw(b)
		case TagInteger:
			w.u4(uint32(c.Int))
		case TagFloat:
			w.u4(math.Float32bits(c.Float))
		case TagLong:
			w.u4(uint32(uint64(c.Long) >> 32))
			w.u4(uint32(uint64(c.Long)))
		case TagDouble:
			bits := math.Float64bits(c.Double)
			w.u4(uint32(bits >> 32))
			w.u4(uint32(bits))
		case TagClass, TagString, TagMethodType:
			w.u2(c.Ref1)
		case TagFieldref, TagMethodref, TagInterfaceMethodref, TagNameAndType, TagInvokeDynamic:
			w.u2(c.Ref1)
			w.u2(c.Ref2)
		case TagMethodHandle:
			w.u1(c.Kind)
			w.u2(c.Ref1)
		default:
			return nil, fmt.Errorf("classfile: cannot serialise constant tag %d", c.Tag)
		}
	}

	w.u2(uint16(f.AccessFlags))
	w.u2(f.ThisClass)
	w.u2(f.SuperClass)

	if len(f.Interfaces) > 0xFFFF {
		return nil, fmt.Errorf("classfile: too many interfaces (%d)", len(f.Interfaces))
	}
	w.u2(uint16(len(f.Interfaces)))
	for _, idx := range f.Interfaces {
		w.u2(idx)
	}

	if err := writeMembers(w, f.Pool, f.Fields); err != nil {
		return nil, err
	}
	if err := writeMembers(w, f.Pool, f.Methods); err != nil {
		return nil, err
	}
	if err := writeAttributes(w, f.Pool, f.Attributes); err != nil {
		return nil, err
	}
	return w.buf, nil
}

func internAttrNames(cp *ConstPool, attrs []Attribute) {
	for _, a := range attrs {
		cp.AddUtf8(a.AttrName())
		if c, ok := a.(*CodeAttr); ok {
			internAttrNames(cp, c.Attributes)
		}
	}
}

func writeMembers(w *writer, cp *ConstPool, ms []*Member) error {
	if len(ms) > 0xFFFF {
		return fmt.Errorf("classfile: too many members (%d)", len(ms))
	}
	w.u2(uint16(len(ms)))
	for _, m := range ms {
		w.u2(uint16(m.AccessFlags))
		w.u2(m.NameIndex)
		w.u2(m.DescIndex)
		if err := writeAttributes(w, cp, m.Attributes); err != nil {
			return err
		}
	}
	return nil
}

func writeAttributes(w *writer, cp *ConstPool, attrs []Attribute) error {
	if len(attrs) > 0xFFFF {
		return fmt.Errorf("classfile: too many attributes (%d)", len(attrs))
	}
	w.u2(uint16(len(attrs)))
	for _, a := range attrs {
		// Names were pre-interned before the pool was written, so this
		// lookup always hits an existing entry.
		nameIdx := cp.AddUtf8(a.AttrName())
		w.u2(nameIdx)
		// Reserve the attribute_length slot, encode the body straight
		// into the same buffer, then patch the length in place — no
		// per-attribute scratch writer.
		lenAt := len(w.buf)
		w.u4(0)
		if err := encodeAttribute(w, cp, a); err != nil {
			return err
		}
		binary.BigEndian.PutUint32(w.buf[lenAt:], uint32(len(w.buf)-lenAt-4))
	}
	return nil
}

func encodeAttribute(w *writer, cp *ConstPool, a Attribute) error {
	switch at := a.(type) {
	case *CodeAttr:
		w.u2(at.MaxStack)
		w.u2(at.MaxLocals)
		w.u4(uint32(len(at.Code)))
		w.raw(at.Code)
		w.u2(uint16(len(at.Handlers)))
		for _, h := range at.Handlers {
			w.u2(h.StartPC)
			w.u2(h.EndPC)
			w.u2(h.HandlerPC)
			w.u2(h.CatchType)
		}
		if err := writeAttributes(w, cp, at.Attributes); err != nil {
			return err
		}
	case *ExceptionsAttr:
		w.u2(uint16(len(at.Classes)))
		for _, c := range at.Classes {
			w.u2(c)
		}
	case *ConstantValueAttr:
		w.u2(at.ValueIndex)
	case *SourceFileAttr:
		w.u2(at.NameIndex)
	case *SignatureAttr:
		w.u2(at.SigIndex)
	case *InnerClassesAttr:
		w.u2(uint16(len(at.Entries)))
		for _, e := range at.Entries {
			w.u2(e.InnerClass)
			w.u2(e.OuterClass)
			w.u2(e.InnerName)
			w.u2(uint16(e.Flags))
		}
	case *LineNumberTableAttr:
		w.u2(uint16(len(at.Entries)))
		for _, e := range at.Entries {
			w.u2(e.StartPC)
			w.u2(e.Line)
		}
	case *LocalVariableTableAttr:
		w.u2(uint16(len(at.Entries)))
		for _, e := range at.Entries {
			w.u2(e.StartPC)
			w.u2(e.Length)
			w.u2(e.NameIndex)
			w.u2(e.DescIndex)
			w.u2(e.Slot)
		}
	case *StackMapTableAttr:
		w.raw(at.Raw)
	case *AnnotationsAttr:
		encodeAnnotationsAttr(w, at)
	case *BootstrapMethodsAttr:
		encodeBootstrapMethods(w, at)
	case *SyntheticAttr, *DeprecatedAttr:
		// zero-length bodies
	case *RawAttr:
		w.raw(at.Data)
	default:
		return fmt.Errorf("classfile: cannot serialise attribute %T", a)
	}
	return nil
}
