// Package classfile reads and writes JVM classfiles (JVMS §4): the
// 0xCAFEBABE container with its constant pool, field/method tables and
// attributes. The model is fully mutable so that mutation operators can
// rewrite any part of a class and re-serialise it, including classes
// that violate semantic constraints (that is the point of a fuzzer).
package classfile

import (
	"fmt"
	"math"
)

// ConstTag identifies a constant pool entry kind (JVMS Table 4.4-A).
type ConstTag byte

// Constant pool tags.
const (
	TagUtf8               ConstTag = 1
	TagInteger            ConstTag = 3
	TagFloat              ConstTag = 4
	TagLong               ConstTag = 5
	TagDouble             ConstTag = 6
	TagClass              ConstTag = 7
	TagString             ConstTag = 8
	TagFieldref           ConstTag = 9
	TagMethodref          ConstTag = 10
	TagInterfaceMethodref ConstTag = 11
	TagNameAndType        ConstTag = 12
	TagMethodHandle       ConstTag = 15
	TagMethodType         ConstTag = 16
	TagInvokeDynamic      ConstTag = 18
)

// String returns the JVMS name of the tag.
func (t ConstTag) String() string {
	switch t {
	case TagUtf8:
		return "Utf8"
	case TagInteger:
		return "Integer"
	case TagFloat:
		return "Float"
	case TagLong:
		return "Long"
	case TagDouble:
		return "Double"
	case TagClass:
		return "Class"
	case TagString:
		return "String"
	case TagFieldref:
		return "Fieldref"
	case TagMethodref:
		return "Methodref"
	case TagInterfaceMethodref:
		return "InterfaceMethodref"
	case TagNameAndType:
		return "NameAndType"
	case TagMethodHandle:
		return "MethodHandle"
	case TagMethodType:
		return "MethodType"
	case TagInvokeDynamic:
		return "InvokeDynamic"
	}
	return fmt.Sprintf("Tag(%d)", byte(t))
}

// Wide reports whether the tag occupies two constant pool slots
// (long and double, JVMS §4.4.5).
func (t ConstTag) Wide() bool { return t == TagLong || t == TagDouble }

// Constant is one constant pool entry. Fields are used according to Tag:
//
//	Utf8                -> Str
//	Integer             -> Int
//	Float               -> Float
//	Long                -> Long
//	Double              -> Double
//	Class               -> Ref1 (name_index: Utf8)
//	String              -> Ref1 (string_index: Utf8)
//	Fieldref/Methodref/
//	InterfaceMethodref  -> Ref1 (class_index), Ref2 (name_and_type_index)
//	NameAndType         -> Ref1 (name_index), Ref2 (descriptor_index)
//	MethodHandle        -> Kind (reference_kind), Ref1 (reference_index)
//	MethodType          -> Ref1 (descriptor_index)
//	InvokeDynamic       -> Ref1 (bootstrap_method_attr_index), Ref2 (name_and_type_index)
type Constant struct {
	Tag    ConstTag
	Str    string
	Int    int32
	Float  float32
	Long   int64
	Double float64
	Ref1   uint16
	Ref2   uint16
	Kind   byte
}

// ConstPool is the constant pool: entry 0 is unused (nil), and the slot
// after a long/double entry is nil (JVMS quirk preserved faithfully so
// indices round-trip).
type ConstPool struct {
	Entries []*Constant

	// arena chunk-allocates entries built through the Add*/parse paths
	// (one heap object per chunk instead of per constant). Chunks are
	// replaced when full, never regrown, so handed-out pointers stay
	// valid for the life of the pool.
	arena []Constant
}

// alloc places c in the pool's arena and returns a stable pointer.
func (cp *ConstPool) alloc(c Constant) *Constant {
	if len(cp.arena) == cap(cp.arena) {
		// Small first chunk, bigger follow-ups for large pools.
		n := 16
		if cap(cp.arena) >= 16 {
			n = 64
		}
		cp.arena = make([]Constant, 0, n)
	}
	cp.arena = append(cp.arena, c)
	return &cp.arena[len(cp.arena)-1]
}

// NewConstPool returns a pool containing only the reserved slot 0.
func NewConstPool() *ConstPool {
	return &ConstPool{Entries: []*Constant{nil}}
}

// Count returns the constant_pool_count value (len of entries).
func (cp *ConstPool) Count() int { return len(cp.Entries) }

// Valid reports whether idx addresses a real (non-nil) entry.
func (cp *ConstPool) Valid(idx uint16) bool {
	return int(idx) > 0 && int(idx) < len(cp.Entries) && cp.Entries[idx] != nil
}

// Get returns the entry at idx, or nil if out of range/unused.
func (cp *ConstPool) Get(idx uint16) *Constant {
	if !cp.Valid(idx) {
		return nil
	}
	return cp.Entries[idx]
}

// Utf8 returns the string value of a Utf8 entry, or "" and false.
func (cp *ConstPool) Utf8(idx uint16) (string, bool) {
	c := cp.Get(idx)
	if c == nil || c.Tag != TagUtf8 {
		return "", false
	}
	return c.Str, true
}

// ClassName resolves a Class entry to its internal name.
func (cp *ConstPool) ClassName(idx uint16) (string, bool) {
	c := cp.Get(idx)
	if c == nil || c.Tag != TagClass {
		return "", false
	}
	return cp.Utf8(c.Ref1)
}

// NameAndType resolves a NameAndType entry to (name, descriptor).
func (cp *ConstPool) NameAndType(idx uint16) (name, desc string, ok bool) {
	c := cp.Get(idx)
	if c == nil || c.Tag != TagNameAndType {
		return "", "", false
	}
	n, ok1 := cp.Utf8(c.Ref1)
	d, ok2 := cp.Utf8(c.Ref2)
	return n, d, ok1 && ok2
}

// MemberRef resolves a Fieldref/Methodref/InterfaceMethodref entry into
// (class, name, descriptor).
func (cp *ConstPool) MemberRef(idx uint16) (class, name, desc string, ok bool) {
	c := cp.Get(idx)
	if c == nil || (c.Tag != TagFieldref && c.Tag != TagMethodref && c.Tag != TagInterfaceMethodref) {
		return "", "", "", false
	}
	cls, ok1 := cp.ClassName(c.Ref1)
	n, d, ok2 := cp.NameAndType(c.Ref2)
	return cls, n, d, ok1 && ok2
}

func (cp *ConstPool) add(c *Constant) uint16 {
	idx := uint16(len(cp.Entries))
	cp.Entries = append(cp.Entries, c)
	if c.Tag.Wide() {
		cp.Entries = append(cp.Entries, nil)
	}
	return idx
}

// AddUtf8 interns a Utf8 constant and returns its index.
func (cp *ConstPool) AddUtf8(s string) uint16 {
	for i, c := range cp.Entries {
		if c != nil && c.Tag == TagUtf8 && c.Str == s {
			return uint16(i)
		}
	}
	return cp.add(cp.alloc(Constant{Tag: TagUtf8, Str: s}))
}

// AddClass interns a Class constant for an internal name.
func (cp *ConstPool) AddClass(internalName string) uint16 {
	nameIdx := cp.AddUtf8(internalName)
	for i, c := range cp.Entries {
		if c != nil && c.Tag == TagClass && c.Ref1 == nameIdx {
			return uint16(i)
		}
	}
	return cp.add(cp.alloc(Constant{Tag: TagClass, Ref1: nameIdx}))
}

// AddString interns a String constant.
func (cp *ConstPool) AddString(s string) uint16 {
	strIdx := cp.AddUtf8(s)
	for i, c := range cp.Entries {
		if c != nil && c.Tag == TagString && c.Ref1 == strIdx {
			return uint16(i)
		}
	}
	return cp.add(cp.alloc(Constant{Tag: TagString, Ref1: strIdx}))
}

// AddInteger interns an Integer constant.
func (cp *ConstPool) AddInteger(v int32) uint16 {
	for i, c := range cp.Entries {
		if c != nil && c.Tag == TagInteger && c.Int == v {
			return uint16(i)
		}
	}
	return cp.add(cp.alloc(Constant{Tag: TagInteger, Int: v}))
}

// AddFloat interns a Float constant (NaNs compare by bit pattern).
func (cp *ConstPool) AddFloat(v float32) uint16 {
	bits := math.Float32bits(v)
	for i, c := range cp.Entries {
		if c != nil && c.Tag == TagFloat && math.Float32bits(c.Float) == bits {
			return uint16(i)
		}
	}
	return cp.add(cp.alloc(Constant{Tag: TagFloat, Float: v}))
}

// AddLong interns a Long constant.
func (cp *ConstPool) AddLong(v int64) uint16 {
	for i, c := range cp.Entries {
		if c != nil && c.Tag == TagLong && c.Long == v {
			return uint16(i)
		}
	}
	return cp.add(cp.alloc(Constant{Tag: TagLong, Long: v}))
}

// AddDouble interns a Double constant (NaNs compare by bit pattern).
func (cp *ConstPool) AddDouble(v float64) uint16 {
	bits := math.Float64bits(v)
	for i, c := range cp.Entries {
		if c != nil && c.Tag == TagDouble && math.Float64bits(c.Double) == bits {
			return uint16(i)
		}
	}
	return cp.add(cp.alloc(Constant{Tag: TagDouble, Double: v}))
}

// AddNameAndType interns a NameAndType constant.
func (cp *ConstPool) AddNameAndType(name, desc string) uint16 {
	n := cp.AddUtf8(name)
	d := cp.AddUtf8(desc)
	for i, c := range cp.Entries {
		if c != nil && c.Tag == TagNameAndType && c.Ref1 == n && c.Ref2 == d {
			return uint16(i)
		}
	}
	return cp.add(cp.alloc(Constant{Tag: TagNameAndType, Ref1: n, Ref2: d}))
}

func (cp *ConstPool) addMemberRef(tag ConstTag, class, name, desc string) uint16 {
	ci := cp.AddClass(class)
	nt := cp.AddNameAndType(name, desc)
	for i, c := range cp.Entries {
		if c != nil && c.Tag == tag && c.Ref1 == ci && c.Ref2 == nt {
			return uint16(i)
		}
	}
	return cp.add(cp.alloc(Constant{Tag: tag, Ref1: ci, Ref2: nt}))
}

// AddFieldref interns a Fieldref constant.
func (cp *ConstPool) AddFieldref(class, name, desc string) uint16 {
	return cp.addMemberRef(TagFieldref, class, name, desc)
}

// AddMethodref interns a Methodref constant.
func (cp *ConstPool) AddMethodref(class, name, desc string) uint16 {
	return cp.addMemberRef(TagMethodref, class, name, desc)
}

// AddInterfaceMethodref interns an InterfaceMethodref constant.
func (cp *ConstPool) AddInterfaceMethodref(class, name, desc string) uint16 {
	return cp.addMemberRef(TagInterfaceMethodref, class, name, desc)
}

// Describe renders a single entry for javap-style dumps.
func (cp *ConstPool) Describe(idx uint16) string {
	c := cp.Get(idx)
	if c == nil {
		return "<unused>"
	}
	switch c.Tag {
	case TagUtf8:
		return fmt.Sprintf("Utf8 %s", c.Str)
	case TagInteger:
		return fmt.Sprintf("Integer %d", c.Int)
	case TagFloat:
		return fmt.Sprintf("Float %g", c.Float)
	case TagLong:
		return fmt.Sprintf("Long %d", c.Long)
	case TagDouble:
		return fmt.Sprintf("Double %g", c.Double)
	case TagClass:
		n, _ := cp.Utf8(c.Ref1)
		return fmt.Sprintf("Class #%d // %s", c.Ref1, n)
	case TagString:
		s, _ := cp.Utf8(c.Ref1)
		return fmt.Sprintf("String #%d // %q", c.Ref1, s)
	case TagFieldref, TagMethodref, TagInterfaceMethodref:
		cl, n, d, _ := cp.MemberRef(idx)
		return fmt.Sprintf("%s #%d.#%d // %s.%s:%s", c.Tag, c.Ref1, c.Ref2, cl, n, d)
	case TagNameAndType:
		n, d, _ := cp.NameAndType(idx)
		return fmt.Sprintf("NameAndType #%d:#%d // %s:%s", c.Ref1, c.Ref2, n, d)
	case TagMethodHandle:
		return fmt.Sprintf("MethodHandle kind=%d #%d", c.Kind, c.Ref1)
	case TagMethodType:
		d, _ := cp.Utf8(c.Ref1)
		return fmt.Sprintf("MethodType #%d // %s", c.Ref1, d)
	case TagInvokeDynamic:
		n, d, _ := cp.NameAndType(c.Ref2)
		return fmt.Sprintf("InvokeDynamic bsm=%d #%d // %s:%s", c.Ref1, c.Ref2, n, d)
	}
	return c.Tag.String()
}

// Clone returns a deep copy of the pool.
func (cp *ConstPool) Clone() *ConstPool {
	out := &ConstPool{Entries: make([]*Constant, len(cp.Entries))}
	for i, c := range cp.Entries {
		if c != nil {
			out.Entries[i] = out.alloc(*c)
		}
	}
	return out
}
