package classfile

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestStackMapDecodeEncodeRoundTrip(t *testing.T) {
	frames := []StackMapFrame{
		{Kind: FrameSame, OffsetDelta: 5},
		{Kind: FrameSameLocals1Stack, OffsetDelta: 10,
			Stack: []VerificationTypeInfo{{Tag: VTInteger}}},
		{Kind: FrameChop, OffsetDelta: 300, Chopped: 2},
		{Kind: FrameSameExtended, OffsetDelta: 100},
		{Kind: FrameAppend, OffsetDelta: 7,
			Locals: []VerificationTypeInfo{{Tag: VTObject, CPoolIndex: 12}, {Tag: VTLong}}},
		{Kind: FrameFull, OffsetDelta: 9,
			Locals: []VerificationTypeInfo{{Tag: VTUninitializedThis}, {Tag: VTDouble}},
			Stack:  []VerificationTypeInfo{{Tag: VTUninitialized, Offset: 4}, {Tag: VTNull}}},
	}
	attr := EncodeStackMap(frames)
	got, err := DecodeStackMap(attr)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(frames) {
		t.Fatalf("%d frames, want %d", len(got), len(frames))
	}
	for i := range frames {
		if got[i].Kind != frames[i].Kind || got[i].OffsetDelta != frames[i].OffsetDelta {
			t.Errorf("frame %d: %+v vs %+v", i, got[i], frames[i])
		}
	}
	if got[2].Chopped != 2 {
		t.Error("chop count lost")
	}
	if got[4].Locals[0].CPoolIndex != 12 || got[4].Locals[1].Tag != VTLong {
		t.Error("append locals lost")
	}
	if got[5].Stack[0].Offset != 4 {
		t.Error("uninitialized offset lost")
	}
	// Byte-exactness of a second encode.
	if !bytes.Equal(EncodeStackMap(got).Raw, attr.Raw) {
		t.Error("re-encode not byte-exact")
	}
}

func TestStackMapPromotionOnLargeDelta(t *testing.T) {
	// A Same frame with delta > 63 must promote to same_frame_extended.
	attr := EncodeStackMap([]StackMapFrame{{Kind: FrameSame, OffsetDelta: 200}})
	got, err := DecodeStackMap(attr)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Kind != FrameSameExtended || got[0].OffsetDelta != 200 {
		t.Errorf("promotion lost: %+v", got[0])
	}
	attr2 := EncodeStackMap([]StackMapFrame{{Kind: FrameSameLocals1Stack, OffsetDelta: 100,
		Stack: []VerificationTypeInfo{{Tag: VTFloat}}}})
	got2, err := DecodeStackMap(attr2)
	if err != nil {
		t.Fatal(err)
	}
	if got2[0].Kind != FrameSameLocals1StackExtended {
		t.Errorf("1-stack promotion lost: %+v", got2[0])
	}
}

func TestStackMapDecodeErrors(t *testing.T) {
	bad := [][]byte{
		{0x00, 0x01},                  // promised one frame, none present
		{0x00, 0x01, 246},             // reserved frame type
		{0x00, 0x01, 64, 99},          // invalid verification tag
		{0x00, 0x01, 0x00, 0xFF},      // same frame then trailing byte
		{0x00, 0x01, 255, 0x00, 0x01}, // truncated full frame
	}
	for _, raw := range bad {
		if _, err := DecodeStackMap(&StackMapTableAttr{Raw: raw}); err == nil {
			t.Errorf("DecodeStackMap(% x) should fail", raw)
		}
	}
}

func TestStackMapAttachedToMethod(t *testing.T) {
	f := New("SMHost")
	AttachDefaultInit(f)
	code := f.Methods[0].Code()
	frames := []StackMapFrame{
		{Kind: FrameSame, OffsetDelta: 4},
		{Kind: FrameAppend, OffsetDelta: 2, Locals: []VerificationTypeInfo{{Tag: VTInteger}}},
	}
	code.Attributes = append(code.Attributes, EncodeStackMap(frames))
	data, err := f.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	g, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	var sm *StackMapTableAttr
	for _, a := range g.Methods[0].Code().Attributes {
		if s, ok := a.(*StackMapTableAttr); ok {
			sm = s
		}
	}
	if sm == nil {
		t.Fatal("StackMapTable lost in round trip")
	}
	got, err := DecodeStackMap(sm)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1].Kind != FrameAppend {
		t.Errorf("frames lost: %+v", got)
	}
}

// TestPropertyStackMapRoundTrip generates random frame lists and checks
// the encode/decode round trip preserves them structurally.
func TestPropertyStackMapRoundTrip(t *testing.T) {
	mkVTI := func(rng *rand.Rand) VerificationTypeInfo {
		tags := []byte{VTTop, VTInteger, VTFloat, VTDouble, VTLong, VTNull, VTUninitializedThis, VTObject, VTUninitialized}
		v := VerificationTypeInfo{Tag: tags[rng.Intn(len(tags))]}
		if v.Tag == VTObject {
			v.CPoolIndex = uint16(rng.Intn(100) + 1)
		}
		if v.Tag == VTUninitialized {
			v.Offset = uint16(rng.Intn(1000))
		}
		return v
	}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var frames []StackMapFrame
		n := rng.Intn(8)
		for i := 0; i < n; i++ {
			switch rng.Intn(5) {
			case 0:
				frames = append(frames, StackMapFrame{Kind: FrameSame, OffsetDelta: uint16(rng.Intn(64))})
			case 1:
				frames = append(frames, StackMapFrame{Kind: FrameSameLocals1Stack,
					OffsetDelta: uint16(rng.Intn(64)), Stack: []VerificationTypeInfo{mkVTI(rng)}})
			case 2:
				frames = append(frames, StackMapFrame{Kind: FrameChop,
					OffsetDelta: uint16(rng.Intn(1000)), Chopped: 1 + rng.Intn(3)})
			case 3:
				nl := 1 + rng.Intn(3)
				fr := StackMapFrame{Kind: FrameAppend, OffsetDelta: uint16(rng.Intn(1000))}
				for k := 0; k < nl; k++ {
					fr.Locals = append(fr.Locals, mkVTI(rng))
				}
				frames = append(frames, fr)
			default:
				fr := StackMapFrame{Kind: FrameFull, OffsetDelta: uint16(rng.Intn(1000))}
				for k := 0; k < rng.Intn(4); k++ {
					fr.Locals = append(fr.Locals, mkVTI(rng))
				}
				for k := 0; k < rng.Intn(3); k++ {
					fr.Stack = append(fr.Stack, mkVTI(rng))
				}
				frames = append(frames, fr)
			}
		}
		attr := EncodeStackMap(frames)
		got, err := DecodeStackMap(attr)
		if err != nil {
			return false
		}
		if len(got) != len(frames) {
			return false
		}
		for i := range frames {
			if got[i].OffsetDelta != frames[i].OffsetDelta {
				return false
			}
		}
		return bytes.Equal(EncodeStackMap(got).Raw, attr.Raw)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
