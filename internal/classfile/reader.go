package classfile

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
)

// reader is a bounds-checked big-endian cursor over the raw bytes.
type reader struct {
	data []byte
	pos  int
	err  error
}

func (r *reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = &FormatError{Offset: r.pos, Reason: fmt.Sprintf(format, args...)}
	}
}

func (r *reader) u1() byte {
	if r.err != nil {
		return 0
	}
	if r.pos+1 > len(r.data) {
		r.fail("unexpected end of file reading u1")
		return 0
	}
	v := r.data[r.pos]
	r.pos++
	return v
}

func (r *reader) u2() uint16 {
	if r.err != nil {
		return 0
	}
	if r.pos+2 > len(r.data) {
		r.fail("unexpected end of file reading u2")
		return 0
	}
	v := binary.BigEndian.Uint16(r.data[r.pos:])
	r.pos += 2
	return v
}

func (r *reader) u4() uint32 {
	if r.err != nil {
		return 0
	}
	if r.pos+4 > len(r.data) {
		r.fail("unexpected end of file reading u4")
		return 0
	}
	v := binary.BigEndian.Uint32(r.data[r.pos:])
	r.pos += 4
	return v
}

// bytes returns the next n bytes as a subslice of the input — no copy.
// Retained outputs (CodeAttr.Code, RawAttr.Data, ...) therefore alias
// the buffer handed to Parse; see Parse's aliasing contract.
func (r *reader) bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.pos+n > len(r.data) {
		r.fail("unexpected end of file reading %d bytes", n)
		return nil
	}
	v := r.data[r.pos : r.pos+n : r.pos+n]
	r.pos += n
	return v
}

// Parse decodes a classfile from raw bytes. It enforces structural
// well-formedness (magic, pool shape, table lengths) but deliberately
// not semantic constraints — invalid flag combinations, dangling
// indices inside attributes, and illegal bytecode all parse fine;
// judging them is the JVM simulators' job.
//
// The returned File aliases data: byte-slice fields (CodeAttr.Code,
// RawAttr.Data, StackMapTableAttr.Raw, ...) are subslices of it, not
// copies. Callers that mutate or recycle data after parsing must stop
// using the File first (Clone deep-copies and breaks the aliasing).
// Pool strings are always independent copies.
func Parse(data []byte) (*File, error) {
	r := &reader{data: data}
	if magic := r.u4(); r.err == nil && magic != Magic {
		return nil, &FormatError{Offset: 0, Reason: fmt.Sprintf("bad magic 0x%08X", magic)}
	}
	f := &File{}
	f.Minor = r.u2()
	f.Major = r.u2()

	// Constant pool.
	count := int(r.u2())
	if r.err != nil {
		return nil, r.err
	}
	if count == 0 {
		return nil, &FormatError{Offset: r.pos, Reason: "constant_pool_count is zero"}
	}
	pool := &ConstPool{Entries: make([]*Constant, 1, count)}
	for len(pool.Entries) < count {
		tag := ConstTag(r.u1())
		if r.err != nil {
			return nil, r.err
		}
		c := pool.alloc(Constant{Tag: tag})
		switch tag {
		case TagUtf8:
			n := int(r.u2())
			b := r.bytes(n)
			if r.err != nil {
				return nil, r.err
			}
			s, err := decodeModifiedUTF8(b)
			if err != nil {
				return nil, &FormatError{Offset: r.pos, Reason: err.Error()}
			}
			c.Str = s
		case TagInteger:
			c.Int = int32(r.u4())
		case TagFloat:
			c.Float = math.Float32frombits(r.u4())
		case TagLong:
			hi := uint64(r.u4())
			lo := uint64(r.u4())
			c.Long = int64(hi<<32 | lo)
		case TagDouble:
			hi := uint64(r.u4())
			lo := uint64(r.u4())
			c.Double = math.Float64frombits(hi<<32 | lo)
		case TagClass, TagString, TagMethodType:
			c.Ref1 = r.u2()
		case TagFieldref, TagMethodref, TagInterfaceMethodref, TagNameAndType, TagInvokeDynamic:
			c.Ref1 = r.u2()
			c.Ref2 = r.u2()
		case TagMethodHandle:
			c.Kind = r.u1()
			c.Ref1 = r.u2()
		default:
			return nil, &FormatError{Offset: r.pos, Reason: fmt.Sprintf("unknown constant pool tag %d", tag)}
		}
		if r.err != nil {
			return nil, r.err
		}
		pool.Entries = append(pool.Entries, c)
		if tag.Wide() {
			if len(pool.Entries) >= count {
				return nil, &FormatError{Offset: r.pos, Reason: "wide constant overflows constant_pool_count"}
			}
			pool.Entries = append(pool.Entries, nil)
		}
	}
	f.Pool = pool

	f.AccessFlags = Flags(r.u2())
	f.ThisClass = r.u2()
	f.SuperClass = r.u2()

	nIfaces := int(r.u2())
	if r.err != nil {
		return nil, r.err
	}
	f.Interfaces = make([]uint16, 0, nIfaces)
	for i := 0; i < nIfaces; i++ {
		f.Interfaces = append(f.Interfaces, r.u2())
	}

	var err error
	f.Fields, err = parseMembers(r, f, pool)
	if err != nil {
		return nil, err
	}
	f.Methods, err = parseMembers(r, f, pool)
	if err != nil {
		return nil, err
	}
	f.Attributes, err = parseAttributes(r, pool)
	if err != nil {
		return nil, err
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.pos != len(r.data) {
		return nil, &FormatError{Offset: r.pos, Reason: fmt.Sprintf("%d trailing bytes after class body", len(r.data)-r.pos)}
	}
	return f, nil
}

func parseMembers(r *reader, f *File, cp *ConstPool) ([]*Member, error) {
	n := int(r.u2())
	if r.err != nil {
		return nil, r.err
	}
	members := make([]*Member, 0, n)
	for i := 0; i < n; i++ {
		m := f.allocMember(Member{
			AccessFlags: Flags(r.u2()),
			NameIndex:   r.u2(),
			DescIndex:   r.u2(),
		})
		attrs, err := parseAttributes(r, cp)
		if err != nil {
			return nil, err
		}
		m.Attributes = attrs
		members = append(members, m)
	}
	return members, r.err
}

func parseAttributes(r *reader, cp *ConstPool) ([]Attribute, error) {
	n := int(r.u2())
	if r.err != nil {
		return nil, r.err
	}
	attrs := make([]Attribute, 0, n)
	for i := 0; i < n; i++ {
		nameIdx := r.u2()
		length := int(r.u4())
		body := r.bytes(length)
		if r.err != nil {
			return nil, r.err
		}
		name, _ := cp.Utf8(nameIdx)
		a, err := decodeAttribute(name, body, cp)
		if err != nil {
			return nil, err
		}
		attrs = append(attrs, a)
	}
	return attrs, nil
}

func decodeAttribute(name string, body []byte, cp *ConstPool) (Attribute, error) {
	br := &reader{data: body}
	switch name {
	case AttrCode:
		c := &CodeAttr{}
		c.MaxStack = br.u2()
		c.MaxLocals = br.u2()
		codeLen := int(br.u4())
		c.Code = br.bytes(codeLen)
		nh := int(br.u2())
		if br.err != nil {
			return nil, br.err
		}
		c.Handlers = make([]ExceptionHandler, 0, nh)
		for i := 0; i < nh; i++ {
			c.Handlers = append(c.Handlers, ExceptionHandler{
				StartPC:   br.u2(),
				EndPC:     br.u2(),
				HandlerPC: br.u2(),
				CatchType: br.u2(),
			})
		}
		inner, err := parseAttributes(br, cp)
		if err != nil {
			return nil, err
		}
		c.Attributes = inner
		if br.err != nil {
			return nil, br.err
		}
		return c, nil
	case AttrExceptions:
		n := int(br.u2())
		e := &ExceptionsAttr{Classes: make([]uint16, 0, n)}
		for i := 0; i < n; i++ {
			e.Classes = append(e.Classes, br.u2())
		}
		return e, br.err
	case AttrConstantValue:
		a := &ConstantValueAttr{ValueIndex: br.u2()}
		return a, br.err
	case AttrSourceFile:
		a := &SourceFileAttr{NameIndex: br.u2()}
		return a, br.err
	case AttrSignature:
		a := &SignatureAttr{SigIndex: br.u2()}
		return a, br.err
	case AttrInnerClasses:
		n := int(br.u2())
		a := &InnerClassesAttr{Entries: make([]InnerClassEntry, 0, n)}
		for i := 0; i < n; i++ {
			a.Entries = append(a.Entries, InnerClassEntry{
				InnerClass: br.u2(),
				OuterClass: br.u2(),
				InnerName:  br.u2(),
				Flags:      Flags(br.u2()),
			})
		}
		return a, br.err
	case AttrLineNumberTable:
		n := int(br.u2())
		a := &LineNumberTableAttr{Entries: make([]LineNumberEntry, 0, n)}
		for i := 0; i < n; i++ {
			a.Entries = append(a.Entries, LineNumberEntry{StartPC: br.u2(), Line: br.u2()})
		}
		return a, br.err
	case AttrLocalVariableTable:
		n := int(br.u2())
		a := &LocalVariableTableAttr{Entries: make([]LocalVariableEntry, 0, n)}
		for i := 0; i < n; i++ {
			a.Entries = append(a.Entries, LocalVariableEntry{
				StartPC:   br.u2(),
				Length:    br.u2(),
				NameIndex: br.u2(),
				DescIndex: br.u2(),
				Slot:      br.u2(),
			})
		}
		return a, br.err
	case AttrStackMapTable:
		return &StackMapTableAttr{Raw: append([]byte(nil), body...)}, nil
	case AttrRuntimeVisibleAnnotations:
		return decodeAnnotationsAttr(body, true)
	case AttrRuntimeInvisibleAnnotations:
		return decodeAnnotationsAttr(body, false)
	case AttrBootstrapMethods:
		return decodeBootstrapMethods(body)
	case AttrSynthetic:
		if len(body) != 0 {
			return nil, &FormatError{Reason: "Synthetic attribute with nonzero length"}
		}
		return &SyntheticAttr{}, nil
	case AttrDeprecated:
		if len(body) != 0 {
			return nil, &FormatError{Reason: "Deprecated attribute with nonzero length"}
		}
		return &DeprecatedAttr{}, nil
	default:
		return &RawAttr{Name: name, Data: append([]byte(nil), body...)}, nil
	}
}

// utf8Intern caches decoded modified-UTF-8 strings by their raw byte
// encoding. Fuzzing campaigns parse thousands of mutants that share the
// same small vocabulary of names and descriptors, so warm decodes are a
// lock-guarded map hit with zero allocations. Bounded by wholesale
// reset; entries are pure functions of their keys, so eviction only
// costs a redundant decode.
var utf8Intern = struct {
	sync.RWMutex
	m map[string]string
}{m: make(map[string]string)}

const utf8InternMax = 1 << 13

// decodeModifiedUTF8 decodes the JVM's modified UTF-8 (JVMS §4.4.7):
// U+0000 as 0xC0 0x80, no 4-byte forms, surrogate pairs as two 3-byte
// sequences. We map it to a Go string preserving code units.
func decodeModifiedUTF8(b []byte) (string, error) {
	utf8Intern.RLock()
	s, ok := utf8Intern.m[string(b)] // no alloc: map lookup by converted key
	utf8Intern.RUnlock()
	if ok {
		return s, nil
	}
	s, err := decodeModifiedUTF8Slow(b)
	if err != nil {
		return "", err
	}
	utf8Intern.Lock()
	if len(utf8Intern.m) >= utf8InternMax {
		utf8Intern.m = make(map[string]string)
	}
	utf8Intern.m[string(b)] = s
	utf8Intern.Unlock()
	return s, nil
}

func decodeModifiedUTF8Slow(b []byte) (string, error) {
	out := make([]rune, 0, len(b))
	for i := 0; i < len(b); {
		c := b[i]
		switch {
		case c&0x80 == 0:
			if c == 0 {
				return "", fmt.Errorf("modified UTF-8: embedded NUL byte")
			}
			out = append(out, rune(c))
			i++
		case c&0xE0 == 0xC0:
			if i+1 >= len(b) || b[i+1]&0xC0 != 0x80 {
				return "", fmt.Errorf("modified UTF-8: truncated 2-byte sequence")
			}
			out = append(out, rune(c&0x1F)<<6|rune(b[i+1]&0x3F))
			i += 2
		case c&0xF0 == 0xE0:
			if i+2 >= len(b) || b[i+1]&0xC0 != 0x80 || b[i+2]&0xC0 != 0x80 {
				return "", fmt.Errorf("modified UTF-8: truncated 3-byte sequence")
			}
			out = append(out, rune(c&0x0F)<<12|rune(b[i+1]&0x3F)<<6|rune(b[i+2]&0x3F))
			i += 3
		default:
			return "", fmt.Errorf("modified UTF-8: invalid lead byte 0x%02x", c)
		}
	}
	return string(out), nil
}

// asciiNoNUL reports whether s consists only of bytes in [0x01, 0x7F],
// i.e. strings whose modified-UTF-8 encoding is the identity.
func asciiNoNUL(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] == 0 || s[i] >= 0x80 {
			return false
		}
	}
	return true
}

// encodeModifiedUTF8 is the inverse of decodeModifiedUTF8.
func encodeModifiedUTF8(s string) []byte {
	out := make([]byte, 0, len(s))
	for _, r := range s {
		switch {
		case r == 0:
			out = append(out, 0xC0, 0x80)
		case r < 0x80:
			out = append(out, byte(r))
		case r < 0x800:
			out = append(out, 0xC0|byte(r>>6), 0x80|byte(r&0x3F))
		case r < 0x10000:
			out = append(out, 0xE0|byte(r>>12), 0x80|byte(r>>6&0x3F), 0x80|byte(r&0x3F))
		default:
			// Encode as a surrogate pair of 3-byte sequences, as the JVM does.
			r -= 0x10000
			hi := 0xD800 + (r >> 10)
			lo := 0xDC00 + (r & 0x3FF)
			out = append(out, 0xE0|byte(hi>>12), 0x80|byte(hi>>6&0x3F), 0x80|byte(hi&0x3F))
			out = append(out, 0xE0|byte(lo>>12), 0x80|byte(lo>>6&0x3F), 0x80|byte(lo&0x3F))
		}
	}
	return out
}
