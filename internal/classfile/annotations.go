package classfile

import "fmt"

// This file models the remaining structured attributes real classfile
// tooling needs: the annotation family (JVMS §4.7.16/17, with the
// recursive element_value grammar) and BootstrapMethods (§4.7.23).
// The fuzzer's VMs ignore annotations — as real startup pipelines
// mostly do — but round-tripping them structurally keeps the toolchain
// usable on compiler-produced classfiles.

// Attribute names for the annotation family.
const (
	AttrRuntimeVisibleAnnotations   = "RuntimeVisibleAnnotations"
	AttrRuntimeInvisibleAnnotations = "RuntimeInvisibleAnnotations"
	AttrBootstrapMethods            = "BootstrapMethods"
)

// Annotation is one annotation structure.
type Annotation struct {
	// TypeIndex is a Utf8 holding the annotation type's field descriptor.
	TypeIndex uint16
	Elements  []ElementPair
}

// ElementPair is one element_value_pair.
type ElementPair struct {
	NameIndex uint16
	Value     ElementValue
}

// ElementValue is the recursive element_value union; Tag selects which
// members are meaningful:
//
//	'B','C','D','F','I','J','S','Z','s' -> ConstIndex
//	'e' -> EnumType, EnumName
//	'c' -> ClassInfo
//	'@' -> Nested
//	'[' -> Array
type ElementValue struct {
	Tag        byte
	ConstIndex uint16
	EnumType   uint16
	EnumName   uint16
	ClassInfo  uint16
	Nested     *Annotation
	Array      []ElementValue
}

// AnnotationsAttr is RuntimeVisibleAnnotations or
// RuntimeInvisibleAnnotations, selected by Visible.
type AnnotationsAttr struct {
	Visible     bool
	Annotations []Annotation
}

// AttrName implements Attribute.
func (a *AnnotationsAttr) AttrName() string {
	if a.Visible {
		return AttrRuntimeVisibleAnnotations
	}
	return AttrRuntimeInvisibleAnnotations
}

// CloneAttr implements Attribute.
func (a *AnnotationsAttr) CloneAttr() Attribute {
	out := &AnnotationsAttr{Visible: a.Visible}
	for _, an := range a.Annotations {
		out.Annotations = append(out.Annotations, cloneAnnotation(an))
	}
	return out
}

func cloneAnnotation(a Annotation) Annotation {
	out := Annotation{TypeIndex: a.TypeIndex}
	for _, p := range a.Elements {
		out.Elements = append(out.Elements, ElementPair{NameIndex: p.NameIndex, Value: cloneElementValue(p.Value)})
	}
	return out
}

func cloneElementValue(v ElementValue) ElementValue {
	out := v
	if v.Nested != nil {
		n := cloneAnnotation(*v.Nested)
		out.Nested = &n
	}
	out.Array = nil
	for _, e := range v.Array {
		out.Array = append(out.Array, cloneElementValue(e))
	}
	return out
}

// BootstrapMethod is one bootstrap_methods entry.
type BootstrapMethod struct {
	// MethodRef is a MethodHandle constant.
	MethodRef uint16
	Args      []uint16
}

// BootstrapMethodsAttr anchors invokedynamic call sites.
type BootstrapMethodsAttr struct {
	Methods []BootstrapMethod
}

// AttrName implements Attribute.
func (*BootstrapMethodsAttr) AttrName() string { return AttrBootstrapMethods }

// CloneAttr implements Attribute.
func (a *BootstrapMethodsAttr) CloneAttr() Attribute {
	out := &BootstrapMethodsAttr{}
	for _, m := range a.Methods {
		out.Methods = append(out.Methods, BootstrapMethod{
			MethodRef: m.MethodRef,
			Args:      append([]uint16(nil), m.Args...),
		})
	}
	return out
}

// --- decoding -----------------------------------------------------------------

func decodeAnnotationsAttr(body []byte, visible bool) (Attribute, error) {
	br := &reader{data: body}
	n := int(br.u2())
	a := &AnnotationsAttr{Visible: visible}
	for i := 0; i < n; i++ {
		an, err := decodeAnnotation(br)
		if err != nil {
			return nil, err
		}
		a.Annotations = append(a.Annotations, an)
	}
	if br.err != nil {
		return nil, br.err
	}
	if br.pos != len(body) {
		return nil, &FormatError{Offset: br.pos, Reason: "trailing bytes in annotations attribute"}
	}
	return a, nil
}

func decodeAnnotation(br *reader) (Annotation, error) {
	a := Annotation{TypeIndex: br.u2()}
	n := int(br.u2())
	for i := 0; i < n; i++ {
		if br.err != nil {
			return a, br.err
		}
		p := ElementPair{NameIndex: br.u2()}
		v, err := decodeElementValue(br, 0)
		if err != nil {
			return a, err
		}
		p.Value = v
		a.Elements = append(a.Elements, p)
	}
	return a, br.err
}

func decodeElementValue(br *reader, depth int) (ElementValue, error) {
	if depth > 16 {
		return ElementValue{}, &FormatError{Offset: br.pos, Reason: "element_value nesting too deep"}
	}
	v := ElementValue{Tag: br.u1()}
	switch v.Tag {
	case 'B', 'C', 'D', 'F', 'I', 'J', 'S', 'Z', 's':
		v.ConstIndex = br.u2()
	case 'e':
		v.EnumType = br.u2()
		v.EnumName = br.u2()
	case 'c':
		v.ClassInfo = br.u2()
	case '@':
		an, err := decodeAnnotation(br)
		if err != nil {
			return v, err
		}
		v.Nested = &an
	case '[':
		n := int(br.u2())
		for i := 0; i < n; i++ {
			if br.err != nil {
				return v, br.err
			}
			e, err := decodeElementValue(br, depth+1)
			if err != nil {
				return v, err
			}
			v.Array = append(v.Array, e)
		}
	default:
		return v, &FormatError{Offset: br.pos, Reason: fmt.Sprintf("unknown element_value tag %q", v.Tag)}
	}
	return v, br.err
}

func decodeBootstrapMethods(body []byte) (Attribute, error) {
	br := &reader{data: body}
	n := int(br.u2())
	a := &BootstrapMethodsAttr{}
	for i := 0; i < n; i++ {
		m := BootstrapMethod{MethodRef: br.u2()}
		na := int(br.u2())
		if br.err != nil {
			return nil, br.err
		}
		for j := 0; j < na; j++ {
			m.Args = append(m.Args, br.u2())
		}
		a.Methods = append(a.Methods, m)
	}
	if br.err != nil {
		return nil, br.err
	}
	return a, nil
}

// --- encoding -----------------------------------------------------------------

func encodeAnnotationsAttr(w *writer, a *AnnotationsAttr) {
	w.u2(uint16(len(a.Annotations)))
	for _, an := range a.Annotations {
		encodeAnnotation(w, an)
	}
}

func encodeAnnotation(w *writer, a Annotation) {
	w.u2(a.TypeIndex)
	w.u2(uint16(len(a.Elements)))
	for _, p := range a.Elements {
		w.u2(p.NameIndex)
		encodeElementValue(w, p.Value)
	}
}

func encodeElementValue(w *writer, v ElementValue) {
	w.u1(v.Tag)
	switch v.Tag {
	case 'B', 'C', 'D', 'F', 'I', 'J', 'S', 'Z', 's':
		w.u2(v.ConstIndex)
	case 'e':
		w.u2(v.EnumType)
		w.u2(v.EnumName)
	case 'c':
		w.u2(v.ClassInfo)
	case '@':
		if v.Nested != nil {
			encodeAnnotation(w, *v.Nested)
		} else {
			encodeAnnotation(w, Annotation{})
		}
	case '[':
		w.u2(uint16(len(v.Array)))
		for _, e := range v.Array {
			encodeElementValue(w, e)
		}
	}
}

func encodeBootstrapMethods(w *writer, a *BootstrapMethodsAttr) {
	w.u2(uint16(len(a.Methods)))
	for _, m := range a.Methods {
		w.u2(m.MethodRef)
		w.u2(uint16(len(m.Args)))
		for _, arg := range m.Args {
			w.u2(arg)
		}
	}
}
