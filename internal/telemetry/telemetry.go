// Package telemetry is the unified metrics and tracing substrate the
// rest of the system reports through: named counters, gauges and
// power-of-two-bucket latency histograms in a Registry, lightweight
// spans for stage timing, and stable diffable snapshots serialisable to
// JSON (served live by the optional net/http endpoint in http.go).
//
// The design contract, shared with the coverage recorder, is that the
// hot path is lock-free and allocation-free: a metric is interned once
// through its Registry into an atomic handle, and every subsequent
// Inc/Add/Set/Observe is a plain atomic RMW — no map lookup, no lock,
// no allocation (asserted by an AllocsPerRun test). Registration takes
// the registry mutex and is meant for setup time.
//
// Telemetry is strictly observe-only. Nothing in this package feeds a
// decision anywhere in the pipeline: campaign results, difftest
// summaries and replay byte-verification are bit-identical with
// telemetry attached or absent, at any worker count. To make wiring
// unconditional at call sites, every type here is nil-tolerant — a nil
// *Registry hands out nil handles, and operations on nil handles are
// no-ops — so instrumented code never branches on "is telemetry on".
package telemetry

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric (events, classes,
// cache hits). Safe for concurrent use; nil-tolerant.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Load returns the current value (0 on a nil counter).
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-write-wins level metric (pool size, per-mutator
// tallies). Merge sums gauges, so gauges that represent additive levels
// (counts) aggregate naturally across registries.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the level by n.
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Load returns the current value (0 on a nil gauge).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// numBuckets is the histogram's fixed bucket count. Bucket 0 holds
// non-positive observations; bucket i (1 ≤ i ≤ 63) holds values v with
// 2^(i-1) ≤ v < 2^i, i.e. bucketOf(v) = bits.Len64(v). Positive int64s
// have bit length at most 63, so the array covers the full range.
const numBuckets = 64

// Histogram is a power-of-two-bucket distribution, sized for
// nanosecond latencies but agnostic to unit. Observations update three
// atomics (count, sum, one bucket); there is no lock and no allocation.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [numBuckets]atomic.Int64
}

// bucketOf maps an observation to its bucket index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// bucketBounds returns the closed value range [lo, hi] bucket i covers.
func bucketBounds(i int) (lo, hi int64) {
	if i == 0 {
		return 0, 0
	}
	return 1 << (i - 1), 1<<i - 1
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketOf(v)].Add(1)
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations (0 on nil).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// snapshot captures the histogram's current state.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n != 0 {
			lo, hi := bucketBounds(i)
			s.Buckets = append(s.Buckets, Bucket{Lo: lo, Hi: hi, Count: n})
		}
	}
	return s
}

// merge folds a snapshot's counts back into the histogram (the Merge
// primitive; bucket index is recovered from the bucket's lower bound).
func (h *Histogram) merge(s HistogramSnapshot) {
	h.count.Add(s.Count)
	h.sum.Add(s.Sum)
	for _, b := range s.Buckets {
		h.buckets[bucketOf(b.Lo)].Add(b.Count)
	}
}

// Registry is a named collection of metrics. Counter/Gauge/Histogram
// get-or-create handles under a mutex; the handles themselves are the
// lock-free hot path. One registry may serve any number of goroutines
// and subsystems; names are flat, dot-separated by convention
// (campaign.*, difftest.*, jvm.<vm>.*, analysis.*).
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter interns (or retrieves) the named counter. A nil registry
// returns a nil handle, whose operations are no-ops.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge interns (or retrieves) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram interns (or retrieves) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// handles returns stable slices of (name, metric) pairs so Snapshot and
// Merge iterate without holding the registry lock across atomic reads.
func (r *Registry) handles() (cs map[string]*Counter, gs map[string]*Gauge, hs map[string]*Histogram) {
	r.mu.Lock()
	defer r.mu.Unlock()
	cs = make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		cs[k] = v
	}
	gs = make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gs[k] = v
	}
	hs = make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hs[k] = v
	}
	return cs, gs, hs
}

// Snapshot captures every metric into a stable, diffable value. The
// snapshot is not an atomic cut across metrics — writers may land
// between reads — but each individual value is a consistent atomic
// load, which is all the diagnostic consumers need. A nil registry
// snapshots to the empty Snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	cs, gs, hs := r.handles()
	for name, c := range cs {
		s.Counters[name] = c.Load()
	}
	for name, g := range gs {
		s.Gauges[name] = g.Load()
	}
	for name, h := range hs {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// Merge folds every metric of src into r, creating metrics as needed:
// counters and gauges add, histograms add bucketwise. Merging is how an
// aggregator (an experiments session over six campaigns, a fleet
// roll-up) combines per-component registries without the components
// ever sharing handles. Merging a registry into itself or a nil src is
// a no-op; src is read via Snapshot and never modified.
func (r *Registry) Merge(src *Registry) {
	if r == nil || src == nil || src == r {
		return
	}
	r.MergeSnapshot(src.Snapshot())
}

// MergeSnapshot folds a previously captured snapshot into r — the
// deserialised-dump form of Merge.
func (r *Registry) MergeSnapshot(s Snapshot) {
	if r == nil {
		return
	}
	for name, v := range s.Counters {
		r.Counter(name).Add(v)
	}
	for name, v := range s.Gauges {
		r.Gauge(name).Add(v)
	}
	for name, hs := range s.Histograms {
		r.Histogram(name).merge(hs)
	}
}

// Names returns every registered metric name, sorted, for diagnostics.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	cs, gs, hs := r.handles()
	names := make([]string, 0, len(cs)+len(gs)+len(hs))
	for k := range cs {
		names = append(names, k)
	}
	for k := range gs {
		names = append(names, k)
	}
	for k := range hs {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
