package telemetry

import "time"

// Span times one stage of work and records the elapsed nanoseconds
// into a Histogram when ended. It is a value type — no allocation, no
// goroutine, no context — designed so the instrumented loop pays only
// two time.Now calls per stage:
//
//	sp := telemetry.StartSpan(h)
//	... stage ...
//	sp.End()
//
// StartSpan on a nil histogram returns an inert span whose End is a
// no-op and which reads no clock, so disabled telemetry costs one nil
// check per stage.
type Span struct {
	h     *Histogram
	start time.Time
}

// StartSpan begins timing against h.
func StartSpan(h *Histogram) Span {
	if h == nil {
		return Span{}
	}
	return Span{h: h, start: time.Now()}
}

// End records the elapsed time. Safe to call on the zero Span.
func (s Span) End() {
	if s.h != nil {
		s.h.Observe(int64(time.Since(s.start)))
	}
}

// EndIf records the elapsed time only when keep is true — for stages
// that may be skipped mid-flight (a memo hit aborting an execution).
func (s Span) EndIf(keep bool) {
	if keep {
		s.End()
	}
}
