package telemetry

import (
	"encoding/json"
	"time"
)

// Bucket is one populated power-of-two histogram bucket: observations
// v with Lo ≤ v ≤ Hi. Bucket {0,0} holds non-positive observations.
type Bucket struct {
	Lo    int64 `json:"lo"`
	Hi    int64 `json:"hi"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is a histogram's state at capture time. Buckets
// are in ascending Lo order and only populated buckets appear, so the
// JSON form is stable and compact.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Mean returns the average observation, 0 if empty.
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// MeanDuration is Mean interpreted as nanoseconds.
func (h HistogramSnapshot) MeanDuration() time.Duration {
	return time.Duration(h.Mean())
}

// sub returns the bucketwise difference h − prev. Counts are assumed
// monotone (telemetry never decrements histograms).
func (h HistogramSnapshot) sub(prev HistogramSnapshot) HistogramSnapshot {
	d := HistogramSnapshot{Count: h.Count - prev.Count, Sum: h.Sum - prev.Sum}
	prevAt := map[int64]int64{}
	for _, b := range prev.Buckets {
		prevAt[b.Lo] = b.Count
	}
	for _, b := range h.Buckets {
		if n := b.Count - prevAt[b.Lo]; n != 0 {
			d.Buckets = append(d.Buckets, Bucket{Lo: b.Lo, Hi: b.Hi, Count: n})
		}
	}
	return d
}

// Snapshot is a point-in-time capture of a Registry: plain maps of
// name → value, serialisable with encoding/json (whose map-key sorting
// makes the output byte-stable for goldens and artifact diffs).
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Counter returns the named counter's value, 0 if absent.
func (s Snapshot) Counter(name string) int64 { return s.Counters[name] }

// Gauge returns the named gauge's value, 0 if absent.
func (s Snapshot) Gauge(name string) int64 { return s.Gauges[name] }

// Hist returns the named histogram's snapshot (zero value if absent).
func (s Snapshot) Hist(name string) HistogramSnapshot { return s.Histograms[name] }

// Diff returns the change from prev to s, metric by metric: counters
// and histograms subtract (both are monotone), gauges report s's
// current value whenever it differs from prev's. Metrics identical in
// both are dropped, so the diff of equal snapshots is empty. Diff is
// how a tool brackets one operation on a long-lived registry —
// snapshot, run, snapshot, diff.
func (s Snapshot) Diff(prev Snapshot) Snapshot {
	d := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	for name, v := range s.Counters {
		if n := v - prev.Counters[name]; n != 0 {
			d.Counters[name] = n
		}
	}
	for name, v := range s.Gauges {
		if v != prev.Gauges[name] {
			d.Gauges[name] = v
		}
	}
	for name, h := range s.Histograms {
		if dh := h.sub(prev.Histograms[name]); dh.Count != 0 || dh.Sum != 0 || len(dh.Buckets) != 0 {
			d.Histograms[name] = dh
		}
	}
	return d
}

// MarshalJSON renders the snapshot with sorted keys (encoding/json
// sorts map keys) and omits nothing: empty sections marshal as {} so
// the shape is constant for consumers.
func (s Snapshot) MarshalJSON() ([]byte, error) {
	type alias Snapshot // shed the method to avoid recursion
	a := alias(s)
	if a.Counters == nil {
		a.Counters = map[string]int64{}
	}
	if a.Gauges == nil {
		a.Gauges = map[string]int64{}
	}
	if a.Histograms == nil {
		a.Histograms = map[string]HistogramSnapshot{}
	}
	return json.Marshal(a)
}

// MergeSnapshots combines snapshots additively (counters and gauges
// sum; histogram buckets add) — the snapshot-level form of
// Registry.Merge, used by the live endpoint to present several
// registries as one.
func MergeSnapshots(snaps ...Snapshot) Snapshot {
	r := New()
	for _, s := range snaps {
		r.MergeSnapshot(s)
	}
	return r.Snapshot()
}
