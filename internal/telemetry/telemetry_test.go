package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"
)

var update = os.Getenv("UPDATE_GOLDEN") != ""

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("a")
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	if r.Counter("a") != c {
		t.Fatal("Counter not interned: second lookup returned a new handle")
	}
	g := r.Gauge("b")
	g.Set(7)
	g.Add(-2)
	if got := g.Load(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
}

func TestNilTolerance(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x")
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil handles")
	}
	c.Inc()
	c.Add(5)
	g.Set(5)
	g.Add(5)
	h.Observe(5)
	if c.Load() != 0 || g.Load() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil handles must read zero")
	}
	StartSpan(nil).End()
	Span{}.End()
	r.Merge(New())
	r.MergeSnapshot(Snapshot{Counters: map[string]int64{"x": 1}})
	if names := r.Names(); names != nil {
		t.Fatalf("nil registry Names = %v, want nil", names)
	}
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Gauges) != 0 || len(s.Histograms) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", s)
	}
}

// TestHistogramBuckets pins the power-of-two bucketing: bucket 0 holds
// v ≤ 0; bucket i holds 2^(i-1) ≤ v ≤ 2^i − 1.
func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		v      int64
		lo, hi int64
	}{
		{-5, 0, 0},
		{0, 0, 0},
		{1, 1, 1},
		{2, 2, 3},
		{3, 2, 3},
		{4, 4, 7},
		{7, 4, 7},
		{8, 8, 15},
		{1023, 512, 1023},
		{1024, 1024, 2047},
		{1 << 40, 1 << 40, 1<<41 - 1},
		{1<<63 - 1, 1 << 62, 1<<63 - 1},
	}
	for _, tc := range cases {
		h := &Histogram{}
		h.Observe(tc.v)
		s := h.snapshot()
		if len(s.Buckets) != 1 {
			t.Fatalf("Observe(%d): %d buckets populated, want 1", tc.v, len(s.Buckets))
		}
		b := s.Buckets[0]
		if b.Lo != tc.lo || b.Hi != tc.hi || b.Count != 1 {
			t.Errorf("Observe(%d) landed in [%d,%d]×%d, want [%d,%d]×1", tc.v, b.Lo, b.Hi, b.Count, tc.lo, tc.hi)
		}
		if tc.v > 0 && (tc.v < b.Lo || tc.v > b.Hi) {
			t.Errorf("Observe(%d): value outside its own bucket [%d,%d]", tc.v, b.Lo, b.Hi)
		}
		if s.Count != 1 || s.Sum != tc.v {
			t.Errorf("Observe(%d): count=%d sum=%d, want 1/%d", tc.v, s.Count, s.Sum, tc.v)
		}
	}
}

func TestHistogramSnapshotOrderAndStats(t *testing.T) {
	h := &Histogram{}
	for _, v := range []int64{1000, 1, 5, 5, 0, 1 << 20} {
		h.Observe(v)
	}
	s := h.snapshot()
	if s.Count != 6 || s.Sum != 1000+1+5+5+0+1<<20 {
		t.Fatalf("count=%d sum=%d", s.Count, s.Sum)
	}
	var total int64
	for i := 1; i < len(s.Buckets); i++ {
		if s.Buckets[i].Lo <= s.Buckets[i-1].Lo {
			t.Fatalf("buckets not ascending: %+v", s.Buckets)
		}
	}
	for _, b := range s.Buckets {
		total += b.Count
	}
	if total != s.Count {
		t.Fatalf("bucket counts sum to %d, count is %d", total, s.Count)
	}
	if want := float64(s.Sum) / 6; s.Mean() != want {
		t.Fatalf("mean = %v, want %v", s.Mean(), want)
	}
}

// TestMerge verifies Registry.Merge: counters and gauges add,
// histograms add bucketwise, and the merged registry's snapshot equals
// the metric-wise sum of the sources' snapshots.
func TestMerge(t *testing.T) {
	a, b := New(), New()
	a.Counter("c.shared").Add(3)
	a.Counter("c.only_a").Add(1)
	a.Gauge("g").Set(10)
	b.Counter("c.shared").Add(4)
	b.Counter("c.only_b").Add(2)
	b.Gauge("g").Set(5)
	for _, v := range []int64{1, 100, 100} {
		a.Histogram("h").Observe(v)
	}
	for _, v := range []int64{100, 1 << 30} {
		b.Histogram("h").Observe(v)
	}

	m := New()
	m.Merge(a)
	m.Merge(b)
	s := m.Snapshot()

	if got := s.Counter("c.shared"); got != 7 {
		t.Errorf("shared counter = %d, want 7", got)
	}
	if s.Counter("c.only_a") != 1 || s.Counter("c.only_b") != 2 {
		t.Errorf("disjoint counters wrong: %v", s.Counters)
	}
	if got := s.Gauge("g"); got != 15 {
		t.Errorf("merged gauge = %d, want 15 (gauges sum across registries)", got)
	}
	h := s.Hist("h")
	if h.Count != 5 || h.Sum != 1+100+100+100+1<<30 {
		t.Errorf("merged hist count=%d sum=%d", h.Count, h.Sum)
	}
	wantBuckets := []Bucket{{1, 1, 1}, {64, 127, 3}, {1 << 30, 1<<31 - 1, 1}}
	if !reflect.DeepEqual(h.Buckets, wantBuckets) {
		t.Errorf("merged buckets = %+v, want %+v", h.Buckets, wantBuckets)
	}

	// Merge must be additive at the snapshot level too.
	if ms := MergeSnapshots(a.Snapshot(), b.Snapshot()); !reflect.DeepEqual(ms, s) {
		t.Errorf("MergeSnapshots disagrees with Registry.Merge:\n%+v\n%+v", ms, s)
	}

	// Self-merge and nil-merge are no-ops.
	before := a.Snapshot()
	a.Merge(a)
	a.Merge(nil)
	if after := a.Snapshot(); !reflect.DeepEqual(before, after) {
		t.Errorf("self/nil merge changed the registry: %+v -> %+v", before, after)
	}
}

// TestConcurrentIncrements hammers one registry from varying worker
// counts (mirrors the engine matrix: 2, 4, GOMAXPROCS) and checks the
// totals are exact. Run under -race in CI.
func TestConcurrentIncrements(t *testing.T) {
	counts := []int{2, 4, runtime.GOMAXPROCS(0)}
	for _, workers := range counts {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			r := New()
			const perWorker = 5000
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					// Half the handles are pre-interned per goroutine,
					// half looked up hot, so the map path races with
					// the atomic path the way real wiring does.
					c := r.Counter("c")
					h := r.Histogram("h")
					for i := 0; i < perWorker; i++ {
						c.Inc()
						r.Counter("c2").Add(2)
						r.Gauge("g").Add(1)
						h.Observe(int64(i%1024 + 1))
						if i%64 == 0 {
							_ = r.Snapshot() // concurrent reader
						}
					}
				}(w)
			}
			wg.Wait()
			s := r.Snapshot()
			n := int64(workers * perWorker)
			if got := s.Counter("c"); got != n {
				t.Errorf("c = %d, want %d", got, n)
			}
			if got := s.Counter("c2"); got != 2*n {
				t.Errorf("c2 = %d, want %d", got, 2*n)
			}
			if got := s.Gauge("g"); got != n {
				t.Errorf("g = %d, want %d", got, n)
			}
			if got := s.Hist("h").Count; got != n {
				t.Errorf("h count = %d, want %d", got, n)
			}
		})
	}
}

// TestHotPathZeroAlloc asserts the coverage-recorder contract: once a
// handle is interned, increments and observations allocate nothing.
func TestHotPathZeroAlloc(t *testing.T) {
	r := New()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(9)
		g.Add(-1)
		h.Observe(12345)
	}); n != 0 {
		t.Fatalf("hot-path metric ops allocate %v bytes/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		sp := StartSpan(h)
		sp.End()
	}); n != 0 {
		t.Fatalf("span start/end allocates %v bytes/op, want 0", n)
	}
}

func TestSpanRecordsElapsed(t *testing.T) {
	r := New()
	h := r.Histogram("stage_ns")
	sp := StartSpan(h)
	time.Sleep(2 * time.Millisecond)
	sp.End()
	if h.Count() != 1 {
		t.Fatalf("span did not record: count=%d", h.Count())
	}
	if h.Sum() < int64(time.Millisecond) {
		t.Fatalf("span recorded %dns, want ≥1ms", h.Sum())
	}
	StartSpan(h).EndIf(false)
	if h.Count() != 1 {
		t.Fatal("EndIf(false) must not record")
	}
	StartSpan(h).EndIf(true)
	if h.Count() != 2 {
		t.Fatal("EndIf(true) must record")
	}
}

func TestSnapshotDiff(t *testing.T) {
	r := New()
	r.Counter("c").Add(10)
	r.Gauge("g").Set(1)
	r.Histogram("h").Observe(5)
	before := r.Snapshot()

	r.Counter("c").Add(7)
	r.Counter("new").Inc()
	r.Gauge("g").Set(4)
	r.Histogram("h").Observe(5)
	r.Histogram("h").Observe(4000)
	after := r.Snapshot()

	d := after.Diff(before)
	if d.Counter("c") != 7 || d.Counter("new") != 1 {
		t.Errorf("counter diff wrong: %v", d.Counters)
	}
	if d.Gauge("g") != 4 {
		t.Errorf("gauge diff = %d, want current value 4", d.Gauge("g"))
	}
	h := d.Hist("h")
	if h.Count != 2 || h.Sum != 4005 {
		t.Errorf("hist diff count=%d sum=%d, want 2/4005", h.Count, h.Sum)
	}
	wantBuckets := []Bucket{{4, 7, 1}, {2048, 4095, 1}}
	if !reflect.DeepEqual(h.Buckets, wantBuckets) {
		t.Errorf("hist diff buckets = %+v, want %+v", h.Buckets, wantBuckets)
	}

	// Diff of identical snapshots is empty.
	if e := after.Diff(after); len(e.Counters)+len(e.Gauges)+len(e.Histograms) != 0 {
		t.Errorf("self-diff not empty: %+v", e)
	}
}

// TestSnapshotJSONGolden pins the serialised snapshot shape — the
// contract for /metrics.json consumers, dump files, and cmd/report's
// -telemetry-in. Regenerate with UPDATE_GOLDEN=1.
func TestSnapshotJSONGolden(t *testing.T) {
	r := New()
	r.Counter("campaign.iterations").Add(160)
	r.Counter("campaign.prefilter.hits").Add(12)
	r.Gauge("campaign.pool_size").Set(84)
	for _, v := range []int64{0, 1, 3, 900, 900, 1 << 14} {
		r.Histogram("campaign.stage.commit_ns").Observe(v)
	}
	blob, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	blob = append(blob, '\n')

	golden := filepath.Join("testdata", "snapshot_golden.json")
	if update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, blob, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (set UPDATE_GOLDEN=1 to create): %v", err)
	}
	if string(blob) != string(want) {
		t.Errorf("snapshot JSON drifted from golden:\n--- got ---\n%s--- want ---\n%s", blob, want)
	}

	// And it must round-trip: unmarshal + MergeSnapshot reproduces the
	// same snapshot (the dump-and-reload path).
	var back Snapshot
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	r2 := New()
	r2.MergeSnapshot(back)
	if !reflect.DeepEqual(r2.Snapshot(), r.Snapshot()) {
		t.Error("snapshot did not survive JSON round-trip + MergeSnapshot")
	}
}

func TestNames(t *testing.T) {
	r := New()
	r.Counter("b.c")
	r.Gauge("a.g")
	r.Histogram("z.h")
	want := []string{"a.g", "b.c", "z.h"}
	if got := r.Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names = %v, want %v", got, want)
	}
}

// TestHTTPEndpoint drives the live surface end to end on an ephemeral
// port: /healthz answers ok, /metrics.json serves the current merged
// snapshot as valid JSON.
func TestHTTPEndpoint(t *testing.T) {
	r1, r2 := New(), New()
	r1.Counter("c").Add(5)
	r2.Counter("c").Add(7)
	srv, err := Serve("127.0.0.1:0", LiveSnapshot(r1, nil, r2))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	addr := srv.Addr

	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || string(body) != "{\"status\":\"ok\"}\n" {
		t.Fatalf("/healthz: %d %q", resp.StatusCode, body)
	}

	r1.Counter("c").Add(1) // live: served value must reflect this
	resp, err = http.Get("http://" + addr + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics.json: status %d", resp.StatusCode)
	}
	var s Snapshot
	if err := json.Unmarshal(body, &s); err != nil {
		t.Fatalf("/metrics.json not valid JSON: %v\n%s", err, body)
	}
	if got := s.Counter("c"); got != 13 {
		t.Fatalf("served counter = %d, want 13 (merged 6+7)", got)
	}
}

// TestServeShutdown covers the graceful path: after Shutdown returns,
// the port is released (a second Serve can bind it) and new requests
// are refused.
func TestServeShutdown(t *testing.T) {
	r := New()
	srv, err := Serve("127.0.0.1:0", LiveSnapshot(r))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + srv.Addr + "/healthz"); err != nil {
		t.Fatalf("pre-shutdown request: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if _, err := http.Get("http://" + srv.Addr + "/healthz"); err == nil {
		t.Fatal("request succeeded after shutdown")
	}
	// The address is free again.
	srv2, err := Serve(srv.Addr, LiveSnapshot(r))
	if err != nil {
		t.Fatalf("rebind after shutdown: %v", err)
	}
	srv2.Close()
}
