package telemetry

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
)

// Handler returns an http.Handler serving the live metrics surface:
//
//	GET /metrics.json — the snapshot() result, indented JSON
//	GET /healthz      — {"status":"ok"}
//
// snapshot is called per request, so the handler always reports the
// registry's current state; readers only observe — nothing they do can
// perturb the campaign.
func Handler(snapshot func() Snapshot) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		blob, err := json.MarshalIndent(snapshot(), "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Write(append(blob, '\n'))
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte("{\"status\":\"ok\"}\n"))
	})
	return mux
}

// LiveSnapshot adapts one or more registries into the snapshot
// function Handler wants, merging them per call. Nil registries are
// skipped, so callers can pass optional sources unconditionally.
func LiveSnapshot(regs ...*Registry) func() Snapshot {
	return func() Snapshot {
		agg := New()
		for _, r := range regs {
			agg.Merge(r)
		}
		return agg.Snapshot()
	}
}

// Server is a live metrics endpoint started by Serve. Addr is the
// address actually bound — it differs from the requested one when an
// ephemeral port (":0") was asked for, which is how tests avoid port
// collisions.
type Server struct {
	// Addr is the bound listener address (host:port).
	Addr string
	srv  *http.Server
}

// Serve binds addr (e.g. "localhost:9090" or ":0" for an ephemeral
// port) and serves Handler(snapshot) in a background goroutine.
// Stop it with Shutdown (graceful: in-flight scrapes finish) or Close
// (immediate).
func Serve(addr string, snapshot func() Snapshot) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: Handler(snapshot)}
	go srv.Serve(ln)
	return &Server{Addr: ln.Addr().String(), srv: srv}, nil
}

// Shutdown gracefully stops the server: the listener closes
// immediately, in-flight requests run to completion (or until ctx
// expires, whichever comes first).
func (s *Server) Shutdown(ctx context.Context) error {
	return s.srv.Shutdown(ctx)
}

// Close stops the server immediately, dropping in-flight requests.
func (s *Server) Close() error { return s.srv.Close() }
