// Command classfuzz runs a fuzzing campaign and writes the accepted
// representative classfiles to a directory.
//
// Usage:
//
//	classfuzz [-alg classfuzz|randfuzz|greedyfuzz|uniquefuzz]
//	          [-criterion stbr|st|tr] [-seeds N] [-iters N]
//	          [-seed N] [-out DIR] [-difftest]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/coverage"
	"repro/internal/difftest"
	"repro/internal/fuzz"
	"repro/internal/jvm"
	"repro/internal/seedgen"
)

func main() {
	alg := flag.String("alg", "classfuzz", "algorithm: classfuzz, randfuzz, greedyfuzz, uniquefuzz")
	criterion := flag.String("criterion", "stbr", "uniqueness criterion for classfuzz: st, stbr, tr")
	seedCount := flag.Int("seeds", 100, "number of generated seed classes")
	iters := flag.Int("iters", 1000, "iteration budget")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("out", "", "directory to write accepted .class files (omit to skip)")
	runDiff := flag.Bool("difftest", false, "differentially test the accepted suite on the five VMs")
	flag.Parse()

	var crit coverage.Criterion
	switch *criterion {
	case "st":
		crit = coverage.ST
	case "stbr":
		crit = coverage.STBR
	case "tr":
		crit = coverage.TR
	default:
		fmt.Fprintf(os.Stderr, "unknown criterion %q\n", *criterion)
		os.Exit(2)
	}

	cfg := fuzz.Config{
		Algorithm:  fuzz.Algorithm(*alg),
		Criterion:  crit,
		Seeds:      seedgen.Generate(seedgen.DefaultOptions(*seedCount, *seed)),
		Iterations: *iters,
		Rand:       *seed,
		RefSpec:    jvm.HotSpot9(),
	}
	res, err := fuzz.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "campaign failed: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("%s%s: %d iterations, %d generated, %d representative tests (succ %.1f%%), %s\n",
		res.Algorithm, critLabel(res), res.Iterations, len(res.Gen), len(res.Test),
		res.Succ()*100, res.Elapsed.Round(1000000))

	if *out != "" {
		if err := res.Save(*out); err != nil {
			fmt.Fprintf(os.Stderr, "save: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d classfiles and manifest.json to %s\n", len(res.Test), *out)
	}

	if *runDiff {
		var classes [][]byte
		for _, g := range res.Test {
			classes = append(classes, g.Data)
		}
		sum := difftest.NewStandardRunner().Evaluate(classes)
		fmt.Printf("differential testing: %d classes, %d all-invoked, %d all-rejected-same-stage, %d discrepancies (%.1f%%), %d distinct\n",
			sum.Total, sum.AllInvoked, sum.AllRejectedSameStage,
			sum.Discrepancies, sum.DiffRate()*100, sum.DistinctCount())
		for _, v := range sum.SortedVectors() {
			fmt.Printf("  vector %s: %d classfiles\n", v.Key, v.Count)
		}
	}
}

func critLabel(r *fuzz.Result) string {
	if r.Algorithm == fuzz.Classfuzz {
		return r.Criterion.String()
	}
	return ""
}
