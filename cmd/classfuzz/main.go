// Command classfuzz runs a fuzzing campaign and writes the accepted
// representative classfiles to a directory.
//
// Usage:
//
//	classfuzz [-alg classfuzz|randfuzz|greedyfuzz|uniquefuzz]
//	          [-criterion stbr|st|tr] [-seeds N] [-iters N]
//	          [-seed-strategy uniform|clustered|yield]
//	          [-seed N] [-workers N] [-out DIR] [-difftest] [-progress]
//	          [-replay ITER] [-metrics-addr HOST:PORT] [-metrics-dump FILE]
//
// With -replay ITER the command reproduces iteration ITER of the
// campaign the other flags describe — re-deriving the iteration's RNG
// stream and rebuilding its mutant in isolation — instead of running a
// full campaign.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/campaign"
	"repro/internal/coverage"
	"repro/internal/difftest"
	"repro/internal/jimple"
	"repro/internal/jvm"
	"repro/internal/seedgen"
	"repro/internal/seedsel"
	"repro/internal/telemetry"
)

func main() {
	alg := flag.String("alg", "classfuzz", "algorithm: classfuzz, randfuzz, greedyfuzz, uniquefuzz")
	criterion := flag.String("criterion", "stbr", "uniqueness criterion for classfuzz: st, stbr, tr")
	seedCount := flag.Int("seeds", 100, "number of generated seed classes")
	seedStrategy := flag.String("seed-strategy", "uniform", "seed selection: uniform, clustered, yield")
	iters := flag.Int("iters", 1000, "iteration budget")
	seed := flag.Int64("seed", 1, "random seed")
	workers := flag.Int("workers", 1, "worker pool size for the mutate/execute stages (results are identical at any value)")
	out := flag.String("out", "", "directory to write accepted .class files (omit to skip)")
	runDiff := flag.Bool("difftest", false, "differentially test the accepted suite on the five VMs")
	progress := flag.Bool("progress", false, "print live campaign progress")
	replay := flag.Int("replay", -1, "reproduce this single campaign iteration instead of fuzzing")
	metricsAddr := flag.String("metrics-addr", "", "serve live /metrics.json and /healthz on this address (e.g. 127.0.0.1:8317)")
	metricsDump := flag.String("metrics-dump", "", "write the final telemetry snapshot to this file as JSON")
	flag.Parse()

	var crit coverage.Criterion
	switch *criterion {
	case "st":
		crit = coverage.ST
	case "stbr":
		crit = coverage.STBR
	case "tr":
		crit = coverage.TR
	default:
		fmt.Fprintf(os.Stderr, "unknown criterion %q\n", *criterion)
		os.Exit(2)
	}

	strategy, err := seedsel.ParseStrategy(*seedStrategy)
	if err != nil {
		fmt.Fprintf(os.Stderr, "unknown seed strategy %q (want %s)\n", *seedStrategy, seedsel.Strategies())
		os.Exit(2)
	}

	// Telemetry is observe-only: attaching a registry (for the live
	// endpoint or the dump) cannot change the campaign's results.
	var reg *telemetry.Registry
	if *metricsAddr != "" || *metricsDump != "" {
		reg = telemetry.New()
	}

	seeds := seedgen.Generate(seedgen.DefaultOptions(*seedCount, *seed))
	var source campaign.SeedSource
	if strategy == seedsel.Uniform {
		source = campaign.FlatSeeds(seeds)
	} else {
		source, err = seedsel.New(seeds, seedsel.Options{Strategy: strategy, RefSpec: jvm.HotSpot9(), Telemetry: reg})
		if err != nil {
			fmt.Fprintf(os.Stderr, "seed scheduler: %v\n", err)
			os.Exit(1)
		}
	}

	cfg := campaign.Config{
		Algorithm:  campaign.Algorithm(*alg),
		Criterion:  crit,
		Source:     source,
		Iterations: *iters,
		Rand:       *seed,
		RefSpec:    jvm.HotSpot9(),
		Workers:    *workers,
		Telemetry:  reg,
	}

	if *replay >= 0 {
		doReplay(cfg, *replay, *out)
		return
	}
	if *metricsAddr != "" {
		srv, err := telemetry.Serve(*metricsAddr, func() telemetry.Snapshot { return reg.Snapshot() })
		if err != nil {
			fmt.Fprintf(os.Stderr, "metrics server: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "serving metrics on http://%s/metrics.json\n", srv.Addr)
	}

	if *progress {
		cfg.Observer = campaign.NewProgress(os.Stderr, cfg.Iterations, 0)
	}
	res, err := campaign.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "campaign failed: %v\n", err)
		os.Exit(1)
	}
	if *metricsDump != "" {
		if err := dumpMetrics(*metricsDump, reg.Snapshot()); err != nil {
			fmt.Fprintf(os.Stderr, "metrics dump: %v\n", err)
			os.Exit(1)
		}
	}

	fmt.Printf("%s%s: %d iterations, %d generated, %d representative tests (succ %.1f%%), %s\n",
		res.Algorithm, critLabel(res), res.Iterations, len(res.Gen), len(res.Test),
		res.Succ()*100, res.Elapsed.Round(1000000))

	if *out != "" {
		if err := res.Save(*out); err != nil {
			fmt.Fprintf(os.Stderr, "save: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d classfiles and manifest.json to %s\n", len(res.Test), *out)
	}

	if *runDiff {
		var classes [][]byte
		for _, g := range res.Test {
			classes = append(classes, g.Data)
		}
		sum := difftest.NewStandardRunner().Evaluate(classes)
		fmt.Printf("differential testing: %d classes, %d all-invoked, %d all-rejected-same-stage, %d discrepancies (%.1f%%), %d distinct\n",
			sum.Total, sum.AllInvoked, sum.AllRejectedSameStage,
			sum.Discrepancies, sum.DiffRate()*100, sum.DistinctCount())
		for _, v := range sum.SortedVectors() {
			fmt.Printf("  vector %s: %d classfiles\n", v.Key, v.Count)
		}
	}
}

// doReplay reproduces one iteration of the campaign cfg describes and
// reports (and optionally writes) the rebuilt mutant. The exit code is
// part of the contract: any failure — including a byte-verification
// mismatch against the campaign's own classfile, even when Replay
// still returned the rebuilt mutant for inspection — exits nonzero, so
// scripts and CI can gate on `classfuzz -replay`.
func doReplay(cfg campaign.Config, iter int, out string) {
	info, err := campaign.Replay(cfg, iter)
	if err != nil || info == nil || !info.Verified {
		if err == nil {
			err = fmt.Errorf("iteration %d rebuilt but bytes not verified", iter)
		}
		fmt.Fprintf(os.Stderr, "replay failed: %v\n", err)
		os.Exit(1)
	}
	rec := info.Record
	parent := "seed"
	if rec.Parent >= 0 {
		parent = fmt.Sprintf("mutant of iteration %d", rec.Parent)
	}
	fmt.Printf("replayed iteration %d: %s (%d bytes), parent = pool[%d] (%s), mutator %d, bytes verified against campaign: %v\n",
		iter, info.Class.Name, len(info.Data), rec.PoolIndex, parent, rec.MutatorID, info.Verified)
	if out != "" {
		if err := os.MkdirAll(out, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "replay out: %v\n", err)
			os.Exit(1)
		}
		file := filepath.Join(out, info.Class.Name+".class")
		if err := os.WriteFile(file, info.Data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "replay out: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", file)
	}
	fmt.Printf("\n%s", jimple.Print(info.Class))
}

// dumpMetrics writes a snapshot as indented JSON (the same shape the
// live /metrics.json endpoint serves).
func dumpMetrics(path string, s telemetry.Snapshot) error {
	blob, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}

func critLabel(r *campaign.Result) string {
	if r.Algorithm == campaign.Classfuzz {
		return r.Criterion.String()
	}
	return ""
}
