// Command difftestbench measures the differential-execution engine and
// writes the results as JSON (the `make bench-difftest` artifact
// BENCH_difftest.json). Four modes over one deterministic mixed corpus
// (seed-derived classes, version-skewed rejects, duplicates):
//
//   - sequential-reparse — the pre-engine model: every VM parses every
//     class itself (5 parses per class); the baseline row.
//   - sequential — the parse-once engine at one worker.
//   - parallel — the engine over a worker pool (one row per -workers
//     entry).
//   - memoized — a warm-memo re-evaluation, the steady state of an
//     experiments session whose campaigns share classes.
//
// Every row records wall clock, per-class cost, allocs/bytes per op
// (runtime.MemStats deltas, best of -repeat), and the engine counters
// (parses, VM runs, memo hit rate). All modes produce the identical
// Summary; only cost differs.
//
// Usage:
//
//	difftestbench [-classes N] [-seed N] [-workers 4,8] [-repeat N]
//	              [-out BENCH_difftest.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/difftest"
	"repro/internal/seedgen"
	"repro/internal/telemetry"
)

type row struct {
	Mode    string `json:"mode"`
	Workers int    `json:"workers"`
	Classes int    `json:"classes"`
	// Summary invariants, recorded so a regression in semantics (not
	// just speed) is visible in the artifact diff.
	Discrepancies int `json:"discrepancies"`
	Distinct      int `json:"distinct_vectors"`

	MillisTotal    float64 `json:"millis_total"`
	MicrosPerClass float64 `json:"micros_per_class"`
	Speedup        float64 `json:"speedup_vs_reparse"`
	AllocsPerOp    uint64  `json:"allocs_per_op"`
	BytesPerOp     uint64  `json:"bytes_per_op"`

	Parses         int64   `json:"parses"`
	ParsesPerClass float64 `json:"parses_per_class"`
	VMRuns         int64   `json:"vm_runs"`
	MemoHitRate    float64 `json:"memo_hit_rate"`
}

type report struct {
	Benchmark  string `json:"benchmark"`
	GoMaxProcs int    `json:"gomaxprocs"`
	NumCPU     int    `json:"numcpu"`
	Classes    int    `json:"classes"`
	Repeat     int    `json:"repeat"`
	Rows       []row  `json:"rows"`
}

// corpus builds the committed benchmark workload: seed-derived classes
// with a rejecting skew slice, plus exact duplicates of the first
// quarter so the memoized mode has realistic sharing.
func corpus(n int, seed int64) [][]byte {
	opts := seedgen.DefaultOptions(n, seed)
	opts.SkewFraction = 0.2
	files, err := seedgen.GenerateFiles(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "corpus: %v\n", err)
		os.Exit(1)
	}
	files = append(files, files[:len(files)/4]...)
	return files
}

// measure times fn (best of repeat) and captures allocation deltas.
func measure(repeat int, fn func() *difftest.Summary) (time.Duration, uint64, uint64, *difftest.Summary) {
	var best time.Duration
	var bestAllocs, bestBytes uint64
	var sum *difftest.Summary
	for r := 0; r < repeat; r++ {
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		sum = fn()
		el := time.Since(start)
		runtime.ReadMemStats(&after)
		if best == 0 || el < best {
			best = el
		}
		if allocs := after.Mallocs - before.Mallocs; bestAllocs == 0 || allocs < bestAllocs {
			bestAllocs = allocs
			bestBytes = after.TotalAlloc - before.TotalAlloc
		}
	}
	return best, bestAllocs, bestBytes, sum
}

func main() {
	classCount := flag.Int("classes", 400, "corpus size before duplication")
	seed := flag.Int64("seed", 1, "random seed")
	workersList := flag.String("workers", "4,8", "comma-separated worker counts for the parallel rows")
	repeat := flag.Int("repeat", 3, "evaluations per row (best time wins)")
	out := flag.String("out", "BENCH_difftest.json", "output file")
	flag.Parse()

	var sweep []int
	for _, s := range strings.Split(*workersList, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "bad -workers entry %q\n", s)
			os.Exit(2)
		}
		sweep = append(sweep, n)
	}

	classes := corpus(*classCount, *seed)
	rep := report{
		Benchmark:  "difftest/five-VM-evaluation",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Classes:    len(classes),
		Repeat:     *repeat,
	}

	// Engine counters arrive as a telemetry snapshot delta (the runner's
	// before/after Stats diffed over the measured evaluation).
	addRow := func(mode string, workers int, el time.Duration, allocs, bytes uint64,
		sum *difftest.Summary, st telemetry.Snapshot) {
		parses := st.Counter(difftest.MetricParses)
		probes := st.Counter(difftest.MetricMemoProbes)
		hitRate := 0.0
		if probes > 0 {
			hitRate = float64(st.Counter(difftest.MetricMemoHits)) / float64(probes)
		}
		r := row{
			Mode:           mode,
			Workers:        workers,
			Classes:        len(classes),
			Discrepancies:  sum.Discrepancies,
			Distinct:       sum.DistinctCount(),
			MillisTotal:    float64(el.Microseconds()) / 1000,
			MicrosPerClass: el.Seconds() / float64(len(classes)) * 1e6,
			AllocsPerOp:    allocs,
			BytesPerOp:     bytes,
			Parses:         parses,
			ParsesPerClass: float64(parses) / float64(len(classes)),
			VMRuns:         st.Counter(difftest.MetricVMRuns),
			MemoHitRate:    hitRate,
		}
		if len(rep.Rows) > 0 && rep.Rows[0].MillisTotal > 0 {
			r.Speedup = rep.Rows[0].MillisTotal / r.MillisTotal
		} else {
			r.Speedup = 1
		}
		rep.Rows = append(rep.Rows, r)
		fmt.Fprintf(os.Stderr, "%-19s w=%d: %s, %.1f µs/class, %.2fx, %.1f parses/class, %d allocs/op\n",
			mode, workers, el.Round(time.Millisecond), r.MicrosPerClass, r.Speedup, r.ParsesPerClass, r.AllocsPerOp)
	}

	// Baseline: the pre-engine per-VM-parse model. Run is the engine's
	// parse-once path now, so the baseline re-runs each class through
	// every VM individually.
	{
		r := difftest.NewStandardRunner()
		el, allocs, bytes, _ := measure(*repeat, func() *difftest.Summary {
			for _, data := range classes {
				for _, vm := range r.VMs {
					vm.Run(data)
				}
			}
			return r.Evaluate(nil)
		})
		sum := difftest.NewStandardRunner().Evaluate(classes) // invariants only
		legacy := telemetry.New()
		legacy.Counter(difftest.MetricParses).Add(int64(len(classes) * len(r.VMs)))
		legacy.Counter(difftest.MetricVMRuns).Add(int64(len(classes) * len(r.VMs)))
		addRow("sequential-reparse", 1, el, allocs, bytes, sum, legacy.Snapshot())
	}

	{
		r := difftest.NewStandardRunner()
		var st telemetry.Snapshot
		el, allocs, bytes, sum := measure(*repeat, func() *difftest.Summary {
			before := r.Stats()
			s := r.Evaluate(classes)
			st = r.Stats().Diff(before)
			return s
		})
		addRow("sequential", 1, el, allocs, bytes, sum, st)
	}

	for _, w := range sweep {
		r := difftest.NewStandardRunner()
		var st telemetry.Snapshot
		el, allocs, bytes, sum := measure(*repeat, func() *difftest.Summary {
			before := r.Stats()
			s := r.EvaluateParallel(classes, w)
			st = r.Stats().Diff(before)
			return s
		})
		addRow("parallel", w, el, allocs, bytes, sum, st)
	}

	{
		r := difftest.NewStandardRunner()
		r.Memo = difftest.NewOutcomeMemo()
		r.Evaluate(classes) // warm
		var st telemetry.Snapshot
		el, allocs, bytes, sum := measure(*repeat, func() *difftest.Summary {
			before := r.Stats()
			s := r.Evaluate(classes)
			st = r.Stats().Diff(before)
			return s
		})
		addRow("memoized", 1, el, allocs, bytes, sum, st)
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "marshal: %v\n", err)
		os.Exit(1)
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "write %s: %v\n", *out, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}
