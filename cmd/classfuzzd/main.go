// Command classfuzzd is the fuzzing daemon: a long-running service
// hosting N sharded campaigns over the staged engine, with a
// checkpoint/resume protocol (kill it — even kill -9 — and a restart
// on the same data directory continues with byte-identical results),
// an HTTP corpus/work API with backpressure, and a live dashboard.
//
// Usage:
//
//	classfuzzd -data DIR [-addr HOST:PORT] [-shards N] [-workers N]
//	           [-alg classfuzz|randfuzz|greedyfuzz|uniquefuzz]
//	           [-criterion stbr|st|tr] [-seeds N] [-iters N] [-seed N]
//	           [-seed-strategy uniform|clustered|yield]
//	           [-epochs N] [-queue N] [-checkpoint-every DUR]
//
// API quick reference (see DESIGN.md "Service layer"):
//
//	curl -s localhost:8317/api/status
//	curl -s --data-binary @T.class -X POST localhost:8317/api/seeds
//	curl -s 'localhost:8317/api/discrepancies?since=0'
//	curl -s -X POST localhost:8317/api/checkpoint
//	curl -s localhost:8317/metrics.json
//
// SIGTERM/SIGINT drain gracefully: intake answers 503, running epochs
// stop at a coordinator boundary and checkpoint, queued seeds persist.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/campaign"
	"repro/internal/coverage"
	"repro/internal/seedsel"
	"repro/internal/service"
)

func main() {
	dataDir := flag.String("data", "", "persistent data directory (required)")
	addr := flag.String("addr", "127.0.0.1:8317", "HTTP listen address (\"\" disables the API, :0 picks a port)")
	shards := flag.Int("shards", 2, "concurrent campaign shards")
	workers := flag.Int("workers", 1, "engine workers per shard (results are identical at any value)")
	alg := flag.String("alg", "classfuzz", "algorithm: classfuzz, randfuzz, greedyfuzz, uniquefuzz")
	criterion := flag.String("criterion", "stbr", "uniqueness criterion for classfuzz: st, stbr, tr")
	seedCount := flag.Int("seeds", 60, "generated base seed classes")
	iters := flag.Int("iters", 400, "iterations per shard epoch")
	seed := flag.Int64("seed", 1, "daemon seed (roots every shard epoch's derived campaign seed)")
	seedStrategy := flag.String("seed-strategy", "uniform", "seed selection: uniform, clustered, yield")
	epochs := flag.Int("epochs", 0, "epochs per shard (0 = run until stopped)")
	queueCap := flag.Int("queue", 64, "seed-intake queue capacity (full queue answers 429)")
	ckptEvery := flag.Duration("checkpoint-every", 30*time.Second, "periodic checkpoint interval (0 disables)")
	flag.Parse()

	if *dataDir == "" {
		fmt.Fprintln(os.Stderr, "classfuzzd: -data DIR is required")
		os.Exit(2)
	}
	var crit coverage.Criterion
	switch *criterion {
	case "st":
		crit = coverage.ST
	case "stbr":
		crit = coverage.STBR
	case "tr":
		crit = coverage.TR
	default:
		fmt.Fprintf(os.Stderr, "unknown criterion %q\n", *criterion)
		os.Exit(2)
	}
	if _, err := seedsel.ParseStrategy(*seedStrategy); err != nil {
		fmt.Fprintf(os.Stderr, "unknown seed strategy %q (want %s)\n", *seedStrategy, seedsel.Strategies())
		os.Exit(2)
	}

	logger := log.New(os.Stderr, "classfuzzd: ", log.LstdFlags)
	m := service.New(service.Config{
		DataDir:         *dataDir,
		Addr:            *addr,
		Shards:          *shards,
		Workers:         *workers,
		Algorithm:       campaign.Algorithm(*alg),
		Criterion:       crit,
		SeedCount:       *seedCount,
		Seed:            *seed,
		SeedStrategy:    *seedStrategy,
		Iterations:      *iters,
		Epochs:          *epochs,
		QueueCap:        *queueCap,
		CheckpointEvery: *ckptEvery,
		Logf:            logger.Printf,
	})
	if err := m.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "classfuzzd: %v\n", err)
		os.Exit(1)
	}
	if a := m.Addr(); a != "" {
		// Machine-readable bound address on stdout (scripts parse this).
		fmt.Printf("listening on http://%s/\n", a)
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		m.Wait()
		close(done)
	}()
	select {
	case sig := <-sigCh:
		logger.Printf("caught %s; draining (checkpointing running epochs)", sig)
	case <-done:
		logger.Printf("epoch budget complete; shutting down")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m.Stop(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "classfuzzd: shutdown: %v\n", err)
		os.Exit(1)
	}
	logger.Printf("stopped cleanly")
}
