// Command experiments regenerates the paper's evaluation tables and
// figures on stdout.
//
// Usage:
//
//	experiments [-scale default|paper] [-run all|prelim|table4|table5|table6|table7|figure4|pestimate|mcmcgain|seedsel]
//	            [-seed-strategy uniform|clustered|yield] [-metrics-addr HOST:PORT]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/difftest"
	"repro/internal/experiments"
	"repro/internal/seedsel"
	"repro/internal/telemetry"
)

func main() {
	scaleFlag := flag.String("scale", "default", "campaign scale: default or paper")
	runFlag := flag.String("run", "all", "experiment to run: all, prelim, table4, table5, table6, table7, figure4, pestimate, mcmcgain, seedsel")
	seed := flag.Int64("seed", 1, "random seed")
	workers := flag.Int("workers", 1, "per-campaign worker pool size (results are identical at any value)")
	seedStrategy := flag.String("seed-strategy", "uniform", "seed-selection policy for the session campaigns: "+seedsel.Strategies())
	metricsAddr := flag.String("metrics-addr", "", "serve live /metrics.json and /healthz on this address (e.g. 127.0.0.1:8317)")
	flag.Parse()

	if _, err := seedsel.ParseStrategy(*seedStrategy); err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		flag.Usage()
		os.Exit(2)
	}

	var scale experiments.Scale
	switch *scaleFlag {
	case "default":
		scale = experiments.DefaultScale()
	case "paper":
		scale = experiments.PaperScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}
	scale.Seed = *seed
	scale.Workers = *workers
	scale.SeedStrategy = *seedStrategy

	// Attach the roll-up registry before the session runs so the live
	// endpoint watches the six campaigns as they execute. Observe-only:
	// every table is identical with or without it.
	if *metricsAddr != "" {
		scale.Telemetry = telemetry.New()
		srv, err := telemetry.Serve(*metricsAddr, func() telemetry.Snapshot {
			return scale.Telemetry.Snapshot()
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "metrics server: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "serving metrics on http://%s/metrics.json\n", srv.Addr)
	}

	needSession := map[string]bool{
		"all": true, "table4": true, "table5": true, "table6": true,
		"table7": true, "figure4": true,
	}

	var sess *experiments.Session
	if needSession[*runFlag] {
		fmt.Fprintf(os.Stderr, "running campaigns (%d seeds, %d iterations per directed algorithm, %d workers each)...\n",
			scale.SeedCount, scale.Iterations, scale.Workers)
		var err error
		sess, err = experiments.NewSession(scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "session failed: %v\n", err)
			os.Exit(1)
		}
	}

	show := func(what string) {
		switch what {
		case "prelim":
			p, err := experiments.RunPreliminary(scale.CorpusCount, scale.Seed+7)
			if err != nil {
				fmt.Fprintf(os.Stderr, "preliminary study failed: %v\n", err)
				os.Exit(1)
			}
			fmt.Println(p)
		case "table4":
			fmt.Println(sess.Table4())
		case "table5":
			fmt.Println(sess.Table5())
		case "table6":
			fmt.Println(sess.Table6())
		case "table7":
			fmt.Println(sess.Table7())
		case "figure4":
			fmt.Println(sess.Figure4())
		case "mcmcgain":
			study, err := experiments.RunMCMCGainStudy(scale, 5)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mcmc gain study failed: %v\n", err)
				os.Exit(1)
			}
			fmt.Println(study)
			fmt.Println()
		case "blind":
			b, err := experiments.RunBlindBaseline(scale)
			if err != nil {
				fmt.Fprintf(os.Stderr, "blind baseline failed: %v\n", err)
				os.Exit(1)
			}
			fmt.Println(b)
			fmt.Println()
		case "seedsel":
			study, err := experiments.RunSeedStrategyStudy(scale)
			if err != nil {
				fmt.Fprintf(os.Stderr, "seed-strategy study failed: %v\n", err)
				os.Exit(1)
			}
			fmt.Println(study)
		case "pestimate":
			p, err := experiments.RunPEstimate()
			if err != nil {
				fmt.Fprintf(os.Stderr, "parameter estimation failed: %v\n", err)
				os.Exit(1)
			}
			fmt.Println(p)
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", what)
			os.Exit(2)
		}
	}

	if *runFlag == "all" {
		for _, what := range []string{"prelim", "table4", "table5", "table6", "table7", "figure4", "mcmcgain", "blind", "seedsel", "pestimate"} {
			show(what)
		}
		if sess != nil && sess.Memo != nil {
			st := sess.Memo.Stats()
			fmt.Fprintf(os.Stderr, "difftest memo: %d distinct classes, %d cached outcomes, %.1f%% hit rate (%d hits / %d misses)\n",
				st.Gauge(difftest.MetricMemoDistinctClasses),
				st.Gauge(difftest.MetricMemoCachedOutcomes),
				difftest.MemoHitRate(st)*100,
				st.Counter(difftest.MetricMemoLookupHits),
				st.Counter(difftest.MetricMemoLookupMisses))
		}
		return
	}
	show(*runFlag)
}
