// Command catalog prints the repository's analogue of the paper's 62
// reported JVM discrepancies (§3.3): each entry's classification, the
// encoded five-VM outcome vector it triggers, and optionally the full
// per-VM outcomes or the triggering class in Jimple form.
//
// Usage:
//
//	catalog [-class defect-indicative|policy-difference|compatibility]
//	        [-v] [-jimple] [-id D01]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/catalog"
	"repro/internal/difftest"
	"repro/internal/jimple"
)

func main() {
	clsFilter := flag.String("class", "", "filter by classification")
	verbose := flag.Bool("v", false, "print per-VM outcomes")
	showJimple := flag.Bool("jimple", false, "print the triggering class in Jimple form")
	idFilter := flag.String("id", "", "show only the entry with this ID")
	flag.Parse()

	runner := difftest.NewStandardRunner()
	counts := map[catalog.Classification]int{}
	shown := 0
	for _, e := range catalog.Entries() {
		counts[e.Classification]++
		if *clsFilter != "" && string(e.Classification) != *clsFilter {
			continue
		}
		if *idFilter != "" && e.ID != *idFilter {
			continue
		}
		data, err := e.Data()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		v := runner.Run(data)
		fmt.Printf("%s  %s  [%s/%-4s]  %s\n", e.ID, v.Key(), e.Classification, e.Problem, e.Title)
		shown++
		if *verbose {
			for i, name := range runner.Names() {
				fmt.Printf("      %-14s %s\n", name, v.Outcomes[i])
			}
		}
		if *showJimple && e.Build != nil {
			fmt.Println(jimple.Print(e.Build()))
		}
	}
	if *idFilter == "" && *clsFilter == "" {
		fmt.Printf("\n%d reported discrepancies: %d defect-indicative, %d policy-difference, %d compatibility\n",
			shown, counts[catalog.DefectIndicative], counts[catalog.PolicyDifference], counts[catalog.Compatibility])
	}
}
