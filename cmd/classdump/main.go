// Command classdump disassembles .class files javap-style, optionally
// as textual Jimple.
//
// Usage:
//
//	classdump [-jimple] file.class...
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/classfile"
	"repro/internal/jimple"
)

func main() {
	asJimple := flag.Bool("jimple", false, "print the lifted Jimple model instead of the javap-style dump")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: classdump [-jimple] file.class...")
		os.Exit(2)
	}
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
			os.Exit(1)
		}
		f, err := classfile.Parse(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
			os.Exit(1)
		}
		if *asJimple {
			c, err := jimple.Lift(f)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
				os.Exit(1)
			}
			fmt.Print(jimple.Print(c))
		} else {
			fmt.Print(f.Dump())
		}
	}
}
