// Command report runs the full classfuzz workflow — campaign,
// differential testing, triage — and emits a self-contained Markdown
// report: the document a JVM team would receive from one fuzzing
// session (campaign statistics, mutator effectiveness, discrepancy
// inventory with vectors and triage verdicts, reduced witnesses).
//
// Usage:
//
//	report [-seeds N] [-iters N] [-seed N] [-reduce N]
//	       [-seed-strategy uniform|clustered|yield]
//	       [-service-metrics FILE] > report.md
//
// -service-metrics folds a telemetry snapshot dumped by a classfuzzd
// daemon (curl .../metrics.json > FILE) into the session registry and
// appends a Service section covering the daemon's checkpoint, corpus
// and shard-fold activity.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/campaign"
	"repro/internal/coverage"
	"repro/internal/difftest"
	"repro/internal/fuzz"
	"repro/internal/jimple"
	"repro/internal/jvm"
	"repro/internal/reduce"
	"repro/internal/seedgen"
	"repro/internal/seedsel"
	"repro/internal/service"
	"repro/internal/telemetry"
	"repro/internal/triage"
)

func main() {
	seedCount := flag.Int("seeds", 100, "seed corpus size")
	iters := flag.Int("iters", 1000, "campaign iterations")
	seed := flag.Int64("seed", 1, "random seed")
	workers := flag.Int("workers", 1, "campaign worker pool size (results are identical at any value)")
	reduceN := flag.Int("reduce", 3, "number of discrepancy witnesses to reduce")
	seedStrategy := flag.String("seed-strategy", "uniform", "seed selection: uniform, clustered, yield")
	serviceMetrics := flag.String("service-metrics", "", "telemetry snapshot JSON from a classfuzzd daemon (/metrics.json) to report on")
	flag.Parse()

	strategy, err := seedsel.ParseStrategy(*seedStrategy)
	if err != nil {
		fmt.Fprintf(os.Stderr, "unknown seed strategy %q (want %s)\n", *seedStrategy, seedsel.Strategies())
		os.Exit(2)
	}

	counters := &campaign.Counters{}
	// One registry for the whole session: campaign stage timing, per-VM
	// phase timing and the difftest engine all report here, and the
	// Telemetry section at the end renders from its snapshot.
	treg := telemetry.New()
	seeds := seedgen.Generate(seedgen.DefaultOptions(*seedCount, *seed))
	var source fuzz.SeedSource
	var sched *seedsel.Scheduler
	if strategy == seedsel.Uniform {
		source = fuzz.FlatSeeds(seeds)
	} else {
		sched, err = seedsel.New(seeds, seedsel.Options{Strategy: strategy, RefSpec: jvm.HotSpot9(), Telemetry: treg})
		if err != nil {
			fmt.Fprintf(os.Stderr, "seed scheduler: %v\n", err)
			os.Exit(1)
		}
		source = sched
	}
	cfg := fuzz.Config{
		Algorithm:       fuzz.Classfuzz,
		Criterion:       coverage.STBR,
		Source:          source,
		Iterations:      *iters,
		Rand:            *seed,
		RefSpec:         jvm.HotSpot9(),
		KeepClasses:     true,
		StaticPrefilter: true,
		Workers:         *workers,
		Observer:        counters,
		Telemetry:       treg,
	}
	res, err := fuzz.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "campaign: %v\n", err)
		os.Exit(1)
	}

	runner := difftest.NewStandardRunner()
	runner.Memo = difftest.NewOutcomeMemo()
	runner.UseTelemetry(treg)
	runner.Memo.UseTelemetry(treg)
	var classes [][]byte
	for _, g := range res.Test {
		classes = append(classes, g.Data)
	}
	sum := runner.EvaluateChecked(classes, 0)
	diffStats := runner.Stats()
	tr := triage.New()

	fmt.Printf("# classfuzz session report\n\n")
	fmt.Printf("Coverage-directed differential testing of five simulated JVM implementations\n")
	fmt.Printf("(HotSpot 7/8/9, J9, GIJ), per Chen et al., PLDI 2016.\n\n")

	fmt.Printf("## Campaign\n\n")
	fmt.Printf("| metric | value |\n|---|---|\n")
	fmt.Printf("| algorithm | %s%s |\n", res.Algorithm, res.Criterion)
	fmt.Printf("| seeds | %d |\n", *seedCount)
	fmt.Printf("| iterations | %d |\n", res.Iterations)
	fmt.Printf("| generated classfiles | %d |\n", len(res.Gen))
	fmt.Printf("| representative tests | %d |\n", len(res.Test))
	fmt.Printf("| success rate | %.1f%% |\n", res.Succ()*100)
	fmt.Printf("| seed strategy | %s |\n", strategy)
	fmt.Printf("| wall clock | %s |\n\n", res.Elapsed.Round(1000000))

	if sched != nil {
		fmt.Printf("## Seed scheduling\n\n")
		fmt.Printf("Corpus clustered by structural fingerprint and baseline coverage\n")
		fmt.Printf("trace; draws scheduled per cluster under the %s policy (counters\n", strategy)
		fmt.Printf("are the campaign.seeds.* telemetry series).\n\n")
		fmt.Printf("| cluster | seeds | pool | draws | yield | demotions | demoted |\n|---|---|---|---|---|---|---|\n")
		for _, cs := range sched.ClusterStats() {
			fmt.Printf("| %d | %d | %d | %d | %d | %d | %v |\n",
				cs.Cluster, cs.Seeds, cs.Pool, cs.Draws, cs.Yield, cs.Demotions, cs.Demoted)
		}
		fmt.Printf("\n")
	}

	fmt.Printf("## Engine events\n\n")
	fmt.Printf("Tallied by the campaign engine's observer; the event stream fires\n")
	fmt.Printf("from the sequential draw/commit stages, so these counts are\n")
	fmt.Printf("deterministic at any worker count.\n\n")
	fmt.Printf("| event | count |\n|---|---|\n")
	fmt.Printf("| iterations drawn | %d |\n", counters.Iterations)
	fmt.Printf("| mutants generated | %d |\n", counters.Applied)
	fmt.Printf("| mutator failures | %d |\n", counters.Failed)
	fmt.Printf("| reference-VM executions | %d |\n", counters.Executions)
	fmt.Printf("| prefilter cache hits | %d |\n", counters.PrefilterHits)
	fmt.Printf("| accepted tests | %d |\n\n", counters.Accepts)

	if pf := res.Prefilter; pf != nil {
		fmt.Printf("## Static prefilter savings\n\n")
		fmt.Printf("Statically-doomed mutants whose load-phase coverage trace was\n")
		fmt.Printf("already cached skip reference-VM execution; the accepted suite is\n")
		fmt.Printf("identical either way.\n\n")
		fmt.Printf("| metric (%s%s) | value |\n|---|---|\n", res.Algorithm, res.Criterion)
		fmt.Printf("| mutants checked | %d |\n", pf.Checked)
		fmt.Printf("| statically doomed | %d |\n", pf.Doomed)
		fmt.Printf("| executions skipped | %d |\n", pf.Skipped)
		fmt.Printf("| doomed but executed (cache miss) | %d |\n\n", pf.Executed)
	}

	fmt.Printf("## Differential engine\n\n")
	fmt.Printf("The five-VM stage parses each class once and fans the parsed form\n")
	fmt.Printf("out to the lineup; an outcome memo keyed by exact class content and\n")
	fmt.Printf("VM identity absorbs repeats. Counters cover the checked suite\n")
	fmt.Printf("evaluation above.\n\n")
	diffClasses := diffStats.Counter(difftest.MetricClasses)
	diffParses := diffStats.Counter(difftest.MetricParses)
	memoProbes := diffStats.Counter(difftest.MetricMemoProbes)
	memoHits := diffStats.Counter(difftest.MetricMemoHits)
	hitRate := 0.0
	if memoProbes > 0 {
		hitRate = float64(memoHits) / float64(memoProbes)
	}
	fmt.Printf("| metric | value |\n|---|---|\n")
	fmt.Printf("| classes evaluated | %d |\n", diffClasses)
	fmt.Printf("| classfile parses | %d |\n", diffParses)
	fmt.Printf("| parses avoided (vs per-VM reparse) | %d |\n", diffClasses*int64(len(runner.VMs))-diffParses)
	fmt.Printf("| VM pipeline executions | %d |\n", diffStats.Counter(difftest.MetricVMRuns))
	fmt.Printf("| memo hits | %d / %d probes (%.1f%%) |\n", memoHits, memoProbes, hitRate*100)
	fmt.Printf("| difftest stage wall clock | %s |\n\n",
		time.Duration(diffStats.Hist(difftest.MetricEvaluateNs).Sum).Round(1000000))

	// Re-run the accepted suite on an instrumented reference VM and
	// merge the tracefiles (the ⊕ operator) into the suite's combined
	// coverage. Probe indices resolve back to human-readable names
	// through the shared registry.
	reg := jvm.ProbeRegistry()
	rec := coverage.NewRecorder(reg)
	refVM := jvm.New(jvm.HotSpot9())
	refVM.SetRecorder(rec)
	merged := coverage.NewTrace()
	for _, g := range res.Test {
		rec.Reset()
		refVM.Run(g.Data)
		merged = coverage.Merge(merged, rec.Trace())
	}
	mst := merged.Stats()

	fmt.Printf("## Reference-VM coverage of the accepted suite\n\n")
	fmt.Printf("Merged tracefile of every representative test, re-executed on the\n")
	fmt.Printf("instrumented reference VM (statement and branch-edge probes over\n")
	fmt.Printf("the interned probe registry).\n\n")
	fmt.Printf("| metric | value |\n|---|---|\n")
	fmt.Printf("| statement probes covered | %d / %d |\n", mst.Stmts, reg.NumStmts())
	fmt.Printf("| branch edges covered | %d / %d |\n", mst.Branches, 2*reg.NumBranches())
	fmt.Printf("| combined statistic | %s |\n\n", mst)
	var uncovered []string
	for id := 0; id < reg.NumStmts(); id++ {
		if !merged.HasStmt(coverage.StmtID(id)) {
			uncovered = append(uncovered, reg.StmtName(coverage.StmtID(id)))
		}
	}
	sort.Strings(uncovered)
	if n := len(uncovered); n > 0 {
		const show = 12
		fmt.Printf("Uncovered statement probes (%d total, first %d):\n\n", n, min(show, n))
		for _, name := range uncovered[:min(show, n)] {
			fmt.Printf("- `%s`\n", name)
		}
		fmt.Printf("\n")
	}

	fmt.Printf("## Differential testing\n\n")
	fmt.Printf("| metric | value |\n|---|---|\n")
	fmt.Printf("| suite size | %d |\n", sum.Total)
	fmt.Printf("| invoked by all five VMs | %d |\n", sum.AllInvoked)
	fmt.Printf("| rejected by all at the same stage | %d |\n", sum.AllRejectedSameStage)
	fmt.Printf("| discrepancy-triggering | %d (%.1f%%) |\n", sum.Discrepancies, sum.DiffRate()*100)
	fmt.Printf("| distinct discrepancies | %d |\n", sum.DistinctCount())
	fmt.Printf("| static-oracle mismatches (sanitizer) | %d |\n\n", sum.OracleMismatches)
	for _, s := range sum.MismatchSamples {
		fmt.Printf("- oracle mismatch: %s\n", s)
	}

	fmt.Printf("### Per-VM phase histogram\n\n")
	fmt.Printf("| phase | %s |\n", strings.Join(sum.VMNames, " | "))
	fmt.Printf("|---|%s\n", strings.Repeat("---|", len(sum.VMNames)))
	for _, ph := range jvm.AllPhases() {
		row := make([]string, len(sum.VMNames))
		for v := range sum.VMNames {
			row[v] = fmt.Sprintf("%d", sum.PhaseHistogram[v][int(ph)])
		}
		fmt.Printf("| %s | %s |\n", ph, strings.Join(row, " | "))
	}

	fmt.Printf("\n## Top mutators\n\n")
	stats := append([]fuzz.MutatorStat(nil), res.MutatorStats...)
	sort.SliceStable(stats, func(a, b int) bool {
		if stats[a].Rate() != stats[b].Rate() {
			return stats[a].Rate() > stats[b].Rate()
		}
		return stats[a].Selected > stats[b].Selected
	})
	fmt.Printf("| mutator | selected | representative | rate |\n|---|---|---|---|\n")
	shown := 0
	for _, st := range stats {
		if st.Selected < 2 {
			continue
		}
		fmt.Printf("| %s | %d | %d | %.2f |\n", st.Name, st.Selected, st.Success, st.Rate())
		if shown++; shown == 10 {
			break
		}
	}

	fmt.Printf("\n## Discrepancy inventory\n\n")
	fmt.Printf("Vector digits are the phase codes 0–4 per VM, in the order above.\n\n")
	type finding struct {
		g   *fuzz.GenClass
		v   difftest.Vector
		rep *triage.Report
	}
	byVector := map[string][]finding{}
	for _, g := range res.Test {
		v := runner.Run(g.Data)
		if !v.Discrepant() {
			continue
		}
		byVector[v.Key()] = append(byVector[v.Key()], finding{g: g, v: v, rep: tr.Triage(g.Data)})
	}
	keys := make([]string, 0, len(byVector))
	for k := range byVector {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Printf("| vector | count | triage | witness | via mutator |\n|---|---|---|---|---|\n")
	for _, k := range keys {
		fs := byVector[k]
		f := fs[0]
		mutName := ""
		if f.g.MutatorID >= 0 && f.g.MutatorID < len(res.MutatorStats) {
			mutName = res.MutatorStats[f.g.MutatorID].Name
		}
		fmt.Printf("| `%s` | %d | %s | %s | %s |\n", k, len(fs), f.rep.Verdict, f.g.Name, mutName)
	}

	fmt.Printf("\n## Reduced witnesses\n\n")
	reduced := 0
	for _, k := range keys {
		if reduced == *reduceN {
			break
		}
		f := byVector[k][0]
		if f.g.Class == nil {
			continue
		}
		rres, err := reduce.Reduce(f.g.Class, runner, reduce.Options{MaxRounds: 4})
		if err != nil {
			continue
		}
		reduced++
		fmt.Printf("### %s (vector `%s`, %s)\n\n", f.g.Name, k, f.rep.Verdict)
		for i, name := range runner.Names() {
			fmt.Printf("- %s: %s\n", name, f.v.Outcomes[i])
		}
		fmt.Printf("\n```jimple\n%s```\n\n", jimple.Print(rres.Reduced))
	}
	if reduced == 0 {
		fmt.Printf("_no reducible witnesses in this session_\n")
	}

	// Final snapshot: everything above — campaign stages, difftest
	// engine, memo, per-VM pipeline — reported into one registry.
	final := treg.Snapshot()
	fmt.Printf("\n## Telemetry\n\n")
	fmt.Printf("Session metrics snapshot (observe-only; results are identical with\n")
	fmt.Printf("telemetry detached). Stage timings are per-iteration means over the\n")
	fmt.Printf("campaign engine's pipeline spans.\n\n")
	fmt.Printf("| stage | samples | mean |\n|---|---|---|\n")
	for _, stage := range []string{"draw", "mutate", "prefilter", "exec", "commit"} {
		h := final.Hist("campaign.stage." + stage + "_ns")
		if h.Count == 0 {
			continue
		}
		fmt.Printf("| campaign %s | %d | %s |\n", stage, h.Count, h.MeanDuration())
	}
	if h := final.Hist(difftest.MetricEvaluateNs); h.Count > 0 {
		fmt.Printf("| difftest evaluate | %d | %s |\n", h.Count, h.MeanDuration())
	}
	fmt.Printf("\n| VM | pipeline runs | mean load | mean runtime |\n|---|---|---|---|\n")
	for _, vm := range runner.VMs {
		prefix := "jvm." + vm.Spec.Name
		load := final.Hist(prefix + ".phase." + jvm.PhaseLoading.String() + "_ns")
		run := final.Hist(prefix + ".phase." + jvm.PhaseRuntime.String() + "_ns")
		fmt.Printf("| %s | %d | %s | %s |\n",
			vm.Name(), final.Counter(prefix+".runs"), load.MeanDuration(), run.MeanDuration())
	}
	fmt.Printf("\nPrefilter verdict counters: %d accept / %d reject; memo: %d hits / %d misses.\n",
		final.Counter("campaign.prefilter.verdict.accept"),
		final.Counter("campaign.prefilter.verdict.reject"),
		final.Counter(difftest.MetricMemoLookupHits),
		final.Counter(difftest.MetricMemoLookupMisses))
	fmt.Printf("Dataflow verify band: %d definite / %d reject / %d unknown (verify-doomed: %d).\n",
		final.Counter("analysis.dataflow.definite"),
		final.Counter("analysis.dataflow.reject"),
		final.Counter("analysis.dataflow.unknown"),
		final.Counter("campaign.prefilter.verify_doomed"))
	fmt.Printf("Method verify memo: %d hits / %d misses (%d unsafe fallbacks).\n",
		final.Counter(jvm.MetricVerifyMemoHits),
		final.Counter(jvm.MetricVerifyMemoMisses),
		final.Counter(jvm.MetricVerifyMemoUnsafe))

	if *serviceMetrics != "" {
		if err := reportService(treg, *serviceMetrics); err != nil {
			fmt.Fprintf(os.Stderr, "service metrics: %v\n", err)
			os.Exit(1)
		}
	}
}

// reportService folds a daemon's telemetry snapshot into the session
// registry (so a combined dump sees both) and renders the Service
// section from the service.* metrics.
func reportService(treg *telemetry.Registry, path string) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal(blob, &snap); err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	treg.MergeSnapshot(snap)

	fmt.Printf("\n## Service\n\n")
	fmt.Printf("classfuzzd daemon activity from `%s`: shard epochs folded into\n", path)
	fmt.Printf("the session, checkpoint/resume traffic, and corpus-intake\n")
	fmt.Printf("backpressure (429s mean submitters outpaced the intake queue).\n\n")
	fmt.Printf("| metric | value |\n|---|---|\n")
	fmt.Printf("| shard epochs folded | %d |\n", snap.Counter(service.MetricEpochsCompleted))
	fmt.Printf("| checkpoints written | %d |\n", snap.Counter(service.MetricCheckpointsWritten))
	fmt.Printf("| checkpoints restored | %d |\n", snap.Counter(service.MetricCheckpointsRestored))
	fmt.Printf("| seeds accepted | %d |\n", snap.Counter(service.MetricSeedsAccepted))
	fmt.Printf("| seeds rejected (malformed) | %d |\n", snap.Counter(service.MetricSeedsRejected))
	fmt.Printf("| seeds throttled (429) | %d |\n", snap.Counter(service.MetricSeedsThrottled))
	fmt.Printf("| intake queue high-water | %d |\n", snap.Gauge(service.MetricQueueHighWater))
	fmt.Printf("| discrepancy log length | %d |\n", snap.Gauge(service.MetricDiscrepancies))
	fmt.Printf("| campaign iterations across shards | %d |\n", snap.Counter("campaign.iterations"))
	fmt.Printf("| reference-VM executions across shards | %d |\n", snap.Counter("campaign.executions"))
	return nil
}
