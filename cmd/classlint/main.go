// Command classlint runs the internal/analysis passes over classfiles
// and reports the diagnostics some VM preset would act on.
//
// Usage:
//
//	classlint [flags] [file.class | dir]...
//	classlint -gen N [-genseed S]          # lint a generated seed corpus
//
// A diagnostic is "live" when it is an error some preset in the
// standard five-VM lineup enforces; live diagnostics fail the run.
// Warnings and policy-gated errors no preset enables are advisory and
// printed only with -all. The pass list is DefaultAnalyzers plus the
// dataflow verifier, so §4.10 verification findings (and the dialect
// gates that make individual presets reject them) appear alongside the
// format checks. The make lint target runs this over the seed corpus,
// which must be clean — only mutants may lint dirty.
//
// With -json the run emits a single JSON array — one object per input
// with its live and advisory diagnostics — instead of text; verdicts
// and exit codes are unchanged.
//
// Exit codes:
//
//	0  every input parsed and linted clean
//	1  some input was dirty (live diagnostics or unparseable), or an
//	   input could not be read or generated
//	2  usage error (no inputs)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
	"repro/internal/classfile"
	"repro/internal/jvm"
	"repro/internal/seedgen"
)

// jsonDiag is one diagnostic in -json output.
type jsonDiag struct {
	Analyzer string   `json:"analyzer"`
	Rule     string   `json:"rule"`
	Severity string   `json:"severity"`
	Phase    string   `json:"phase"`
	Err      string   `json:"error,omitempty"`
	JVMS     string   `json:"jvms,omitempty"`
	Method   string   `json:"method,omitempty"`
	Message  string   `json:"message"`
	Presets  []string `json:"presets,omitempty"`
}

// jsonEntry is one linted input in -json output.
type jsonEntry struct {
	Input    string     `json:"input"`
	Clean    bool       `json:"clean"`
	ParseErr string     `json:"parse_error,omitempty"`
	Live     []jsonDiag `json:"live,omitempty"`
	Advisory []jsonDiag `json:"advisory,omitempty"`
}

func main() {
	genCount := flag.Int("gen", 0, "lint a freshly generated seed corpus of this size instead of files")
	genSeed := flag.Int64("genseed", 1, "RNG seed for -gen")
	all := flag.Bool("all", false, "also print advisory diagnostics (warnings and errors no preset enforces)")
	quiet := flag.Bool("q", false, "print only the per-input verdict lines")
	jsonOut := flag.Bool("json", false, "emit a JSON array of per-input diagnostics instead of text")
	flag.Parse()
	if *genCount == 0 && flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: classlint [-all] [-q] [-json] [file.class | dir]...  |  classlint -gen N [-genseed S]")
		os.Exit(2)
	}

	specs := jvm.StandardFive()
	analyzers := append(analysis.DefaultAnalyzers(), analysis.DataflowAnalyzer)
	dirty := 0
	var entries []jsonEntry
	lintOne := func(label string, f *classfile.File) {
		live, advisory := split(analysis.Run(f, analyzers), specs)
		if len(live) > 0 {
			dirty++
		}
		if *jsonOut {
			e := jsonEntry{Input: label, Clean: len(live) == 0}
			for _, d := range live {
				e.Live = append(e.Live, toJSON(d, specs))
			}
			for _, d := range advisory {
				e.Advisory = append(e.Advisory, toJSON(d, specs))
			}
			entries = append(entries, e)
			return
		}
		if len(live) > 0 {
			fmt.Printf("%s: %d live diagnostic(s)\n", label, len(live))
		} else if *all && len(advisory) > 0 {
			fmt.Printf("%s: clean (%d advisory)\n", label, len(advisory))
		} else if !*quiet {
			fmt.Printf("%s: clean\n", label)
		}
		if *quiet {
			return
		}
		for _, d := range live {
			fmt.Printf("  %s [presets: %s]\n", d, strings.Join(enforcers(d, specs), ","))
		}
		if *all {
			for _, d := range advisory {
				fmt.Printf("  advisory: %s\n", d)
			}
		}
	}

	total := 0
	if *genCount > 0 {
		files, err := seedgen.GenerateFiles(seedgen.DefaultOptions(*genCount, *genSeed))
		if err != nil {
			fmt.Fprintf(os.Stderr, "classlint: %v\n", err)
			os.Exit(1)
		}
		total = len(files)
		for i, data := range files {
			f, err := classfile.Parse(data)
			if err != nil {
				fmt.Fprintf(os.Stderr, "seed[%d]: parse: %v\n", i, err)
				os.Exit(1)
			}
			lintOne(fmt.Sprintf("seed[%d] %s", i, f.Name()), f)
		}
	} else {
		paths := expand(flag.Args())
		total = len(paths)
		for _, path := range paths {
			data, err := os.ReadFile(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
				os.Exit(1)
			}
			f, err := classfile.Parse(data)
			if err != nil {
				dirty++
				if *jsonOut {
					entries = append(entries, jsonEntry{Input: path, ParseErr: err.Error()})
				} else {
					fmt.Printf("%s: unparseable: %v\n", path, err)
				}
				continue
			}
			lintOne(path, f)
		}
	}
	if *jsonOut {
		out, err := json.MarshalIndent(entries, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "classlint: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(string(out))
	} else if *genCount > 0 {
		fmt.Printf("linted %d generated seeds, %d dirty\n", total, dirty)
	} else {
		fmt.Printf("linted %d file(s), %d dirty\n", total, dirty)
	}
	if dirty > 0 {
		os.Exit(1)
	}
}

// toJSON renders one diagnostic for -json output.
func toJSON(d analysis.Diagnostic, specs []jvm.Spec) jsonDiag {
	return jsonDiag{
		Analyzer: d.Analyzer,
		Rule:     d.Rule,
		Severity: d.Severity.String(),
		Phase:    d.Phase.String(),
		Err:      d.Err,
		JVMS:     d.JVMS,
		Method:   d.Method,
		Message:  d.Message,
		Presets:  enforcers(d, specs),
	}
}

// split partitions diagnostics into live (an error some standard preset
// enforces) and advisory (everything else).
func split(diags []analysis.Diagnostic, specs []jvm.Spec) (live, advisory []analysis.Diagnostic) {
	for _, d := range diags {
		if d.Severity == analysis.SevError && len(enforcers(d, specs)) > 0 {
			live = append(live, d)
		} else {
			advisory = append(advisory, d)
		}
	}
	return
}

// enforcers names the presets whose policy enables the diagnostic's gate.
func enforcers(d analysis.Diagnostic, specs []jvm.Spec) []string {
	var out []string
	for i := range specs {
		if d.Gate.Enabled(&specs[i].Policy) {
			out = append(out, specs[i].Name)
		}
	}
	return out
}

// expand resolves directory arguments to the .class files inside them.
func expand(args []string) []string {
	var out []string
	for _, a := range args {
		st, err := os.Stat(a)
		if err != nil || !st.IsDir() {
			out = append(out, a)
			continue
		}
		filepath.Walk(a, func(p string, info os.FileInfo, err error) error {
			if err == nil && !info.IsDir() && strings.HasSuffix(p, ".class") {
				out = append(out, p)
			}
			return nil
		})
	}
	return out
}
