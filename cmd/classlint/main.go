// Command classlint runs the internal/analysis passes over classfiles
// and reports the diagnostics some VM preset would act on.
//
// Usage:
//
//	classlint [flags] [file.class | dir]...
//	classlint -gen N [-genseed S]          # lint a generated seed corpus
//
// A diagnostic is "live" when it is an error some preset in the
// standard five-VM lineup enforces; live diagnostics fail the run
// (exit 1). Warnings and policy-gated errors no preset enables are
// advisory and printed only with -all. The make lint target runs this
// over the seed corpus, which must be clean — only mutants may lint
// dirty.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
	"repro/internal/classfile"
	"repro/internal/jvm"
	"repro/internal/seedgen"
)

func main() {
	genCount := flag.Int("gen", 0, "lint a freshly generated seed corpus of this size instead of files")
	genSeed := flag.Int64("genseed", 1, "RNG seed for -gen")
	all := flag.Bool("all", false, "also print advisory diagnostics (warnings and errors no preset enforces)")
	quiet := flag.Bool("q", false, "print only the per-input verdict lines")
	flag.Parse()
	if *genCount == 0 && flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: classlint [-all] [-q] [file.class | dir]...  |  classlint -gen N [-genseed S]")
		os.Exit(2)
	}

	specs := jvm.StandardFive()
	dirty := 0
	lintOne := func(label string, f *classfile.File) {
		live, advisory := split(analysis.Run(f, analysis.DefaultAnalyzers()), specs)
		if len(live) > 0 {
			dirty++
			fmt.Printf("%s: %d live diagnostic(s)\n", label, len(live))
		} else if *all && len(advisory) > 0 {
			fmt.Printf("%s: clean (%d advisory)\n", label, len(advisory))
		} else if !*quiet {
			fmt.Printf("%s: clean\n", label)
		}
		if *quiet {
			return
		}
		for _, d := range live {
			fmt.Printf("  %s [presets: %s]\n", d, strings.Join(enforcers(d, specs), ","))
		}
		if *all {
			for _, d := range advisory {
				fmt.Printf("  advisory: %s\n", d)
			}
		}
	}

	if *genCount > 0 {
		files, err := seedgen.GenerateFiles(seedgen.DefaultOptions(*genCount, *genSeed))
		if err != nil {
			fmt.Fprintf(os.Stderr, "classlint: %v\n", err)
			os.Exit(1)
		}
		for i, data := range files {
			f, err := classfile.Parse(data)
			if err != nil {
				fmt.Fprintf(os.Stderr, "seed[%d]: parse: %v\n", i, err)
				os.Exit(1)
			}
			lintOne(fmt.Sprintf("seed[%d] %s", i, f.Name()), f)
		}
		fmt.Printf("linted %d generated seeds, %d dirty\n", len(files), dirty)
	} else {
		paths := expand(flag.Args())
		for _, path := range paths {
			data, err := os.ReadFile(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
				os.Exit(1)
			}
			f, err := classfile.Parse(data)
			if err != nil {
				dirty++
				fmt.Printf("%s: unparseable: %v\n", path, err)
				continue
			}
			lintOne(path, f)
		}
		fmt.Printf("linted %d file(s), %d dirty\n", len(paths), dirty)
	}
	if dirty > 0 {
		os.Exit(1)
	}
}

// split partitions diagnostics into live (an error some standard preset
// enforces) and advisory (everything else).
func split(diags []analysis.Diagnostic, specs []jvm.Spec) (live, advisory []analysis.Diagnostic) {
	for _, d := range diags {
		if d.Severity == analysis.SevError && len(enforcers(d, specs)) > 0 {
			live = append(live, d)
		} else {
			advisory = append(advisory, d)
		}
	}
	return
}

// enforcers names the presets whose policy enables the diagnostic's gate.
func enforcers(d analysis.Diagnostic, specs []jvm.Spec) []string {
	var out []string
	for i := range specs {
		if d.Gate.Enabled(&specs[i].Policy) {
			out = append(out, specs[i].Name)
		}
	}
	return out
}

// expand resolves directory arguments to the .class files inside them.
func expand(args []string) []string {
	var out []string
	for _, a := range args {
		st, err := os.Stat(a)
		if err != nil || !st.IsDir() {
			out = append(out, a)
			continue
		}
		filepath.Walk(a, func(p string, info os.FileInfo, err error) error {
			if err == nil && !info.IsDir() && strings.HasSuffix(p, ".class") {
				out = append(out, p)
			}
			return nil
		})
	}
	return out
}
