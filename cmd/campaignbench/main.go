// Command campaignbench measures campaign-engine throughput over a
// (workers × batch) grid and writes the results as JSON (the
// `make bench` artifact BENCH_campaign.json). The workload is
// classfuzz[stbr] at the experiments package's default scale; because
// the engine is deterministic in everything but wall clock, every cell
// of the grid fuzzes the identical campaign.
//
// Besides wall-clock throughput each row records the allocation cost of
// one campaign (allocs/op and bytes/op in the testing.B sense, measured
// via runtime.MemStats deltas), so the coverage-engine hot path can be
// tracked for allocation regressions alongside speed.
//
// Usage:
//
//	campaignbench [-seeds N] [-iters N] [-seed N] [-workers 1,4,8]
//	              [-batch 1,8,32] [-repeat N] [-out BENCH_campaign.json]
//	              [-cpuprofile FILE] [-memprofile FILE] [-topallocs N]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/campaign"
	"repro/internal/coverage"
	"repro/internal/jvm"
	"repro/internal/seedgen"
	"repro/internal/telemetry"
)

type row struct {
	Workers      int     `json:"workers"`
	Batch        int     `json:"batch"`
	Iterations   int     `json:"iterations"`
	Tests        int     `json:"tests"`
	MillisTotal  float64 `json:"millis_total"`
	ItersPerSec  float64 `json:"iters_per_sec"`
	MicrosPerGen float64 `json:"micros_per_gen"`
	MicrosTest   float64 `json:"micros_per_test"`
	// MicrosVerify / MicrosExecute split the per-test cost into the
	// reference VM's verification phase (linking: hierarchy checks,
	// resolution, §4.10 method verification — where the verify memo
	// bites) and the rest of the startup pipeline (loading,
	// initialization, runtime). Measured on one extra
	// telemetry-instrumented campaign per cell from the per-phase
	// jvm.<spec>.phase.*_ns histograms, so the timed repeats above stay
	// uninstrumented.
	MicrosVerify  float64 `json:"micros_verify_per_test"`
	MicrosExecute float64 `json:"micros_execute_per_test"`
	// Speedup is relative to the grid's first cell (the first -workers
	// entry at the first -batch entry).
	Speedup float64 `json:"speedup_vs_1"`
	// AllocsPerOp / BytesPerOp are the heap allocation count and bytes
	// of one full campaign (lowest across repeats), matching what
	// `go test -benchmem` reports per benchmark op.
	AllocsPerOp uint64 `json:"allocs_per_op"`
	BytesPerOp  uint64 `json:"bytes_per_op"`
}

type report struct {
	Benchmark  string `json:"benchmark"`
	GoMaxProcs int    `json:"gomaxprocs"`
	NumCPU     int    `json:"numcpu"`
	Seeds      int    `json:"seeds"`
	Iterations int    `json:"iterations"`
	Repeat     int    `json:"repeat"`
	Rows       []row  `json:"rows"`
}

// parseList parses a comma-separated list of positive ints.
func parseList(flagName, s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "bad %s entry %q\n", flagName, part)
			os.Exit(2)
		}
		out = append(out, n)
	}
	return out
}

func main() {
	seedCount := flag.Int("seeds", 60, "seed corpus size")
	iters := flag.Int("iters", 400, "campaign iterations")
	seed := flag.Int64("seed", 1, "random seed")
	workersList := flag.String("workers", "1,4,8", "comma-separated worker counts to sweep")
	batchList := flag.String("batch", "1,8,32", "comma-separated dispatch batch sizes to sweep")
	repeat := flag.Int("repeat", 3, "campaigns per grid cell (best time wins)")
	out := flag.String("out", "BENCH_campaign.json", "output file")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile (after the sweep) to this file")
	topAllocs := flag.Int("topallocs", 15, "allocation sites printed with -memprofile")
	flag.Parse()

	workers := parseList("-workers", *workersList)
	batches := parseList("-batch", *batchList)
	if *memprofile != "" {
		// Sample every allocation so the site report is a census, not an
		// extrapolation. Set before the workload touches the heap.
		runtime.MemProfileRate = 1
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	seeds := seedgen.Generate(seedgen.DefaultOptions(*seedCount, *seed))
	rep := report{
		Benchmark:  "campaign/classfuzz[stbr]+prefilter",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Seeds:      *seedCount,
		Iterations: *iters,
		Repeat:     *repeat,
	}

	var base float64
	for _, w := range workers {
		for _, b := range batches {
			cfg := campaign.Config{
				Algorithm:       campaign.Classfuzz,
				Criterion:       coverage.STBR,
				Source:          campaign.FlatSeeds(seeds),
				Iterations:      *iters,
				Rand:            *seed,
				RefSpec:         jvm.HotSpot9(),
				StaticPrefilter: true,
				Workers:         w,
				Batch:           b,
			}
			best := time.Duration(0)
			var bestAllocs, bestBytes uint64
			var last *campaign.Result
			for r := 0; r < *repeat; r++ {
				var before, after runtime.MemStats
				runtime.ReadMemStats(&before)
				start := time.Now()
				res, err := campaign.Run(cfg)
				if err != nil {
					fmt.Fprintf(os.Stderr, "campaign (workers=%d batch=%d): %v\n", w, b, err)
					os.Exit(1)
				}
				el := time.Since(start)
				runtime.ReadMemStats(&after)
				allocs := after.Mallocs - before.Mallocs
				bytes := after.TotalAlloc - before.TotalAlloc
				if best == 0 || el < best {
					best = el
				}
				if bestAllocs == 0 || allocs < bestAllocs {
					bestAllocs = allocs
					bestBytes = bytes
				}
				last = res
			}
			r := row{
				Workers:     w,
				Batch:       b,
				Iterations:  *iters,
				Tests:       len(last.Test),
				MillisTotal: float64(best.Microseconds()) / 1000,
				ItersPerSec: float64(*iters) / best.Seconds(),
				AllocsPerOp: bestAllocs,
				BytesPerOp:  bestBytes,
			}
			if n := len(last.Gen); n > 0 {
				r.MicrosPerGen = best.Seconds() / float64(n) * 1e6
			}
			if n := len(last.Test); n > 0 {
				r.MicrosTest = best.Seconds() / float64(n) * 1e6
				r.MicrosVerify, r.MicrosExecute = phaseSplit(cfg, n)
			}
			if base == 0 {
				base = r.ItersPerSec
			}
			if base > 0 {
				r.Speedup = r.ItersPerSec / base
			}
			rep.Rows = append(rep.Rows, r)
			fmt.Fprintf(os.Stderr, "workers=%d batch=%d: %s, %.0f iters/sec, %d tests (%.2fx), %d allocs/op, %d B/op\n",
				w, b, best.Round(time.Millisecond), r.ItersPerSec, r.Tests, r.Speedup, r.AllocsPerOp, r.BytesPerOp)
		}
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			os.Exit(1)
		}
		f.Close()
		reportAllocSites(*topAllocs)
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "marshal: %v\n", err)
		os.Exit(1)
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "write %s: %v\n", *out, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}

// phaseSplit runs one telemetry-instrumented campaign for cfg and
// splits the reference VM's per-test wall clock into the verification
// phase (linking) and the rest of the startup pipeline. tests is the
// executed-test count of the identical uninstrumented campaign
// (telemetry is observe-only, so the counts match by construction).
func phaseSplit(cfg campaign.Config, tests int) (verifyµs, executeµs float64) {
	reg := telemetry.New()
	cfg.Telemetry = reg
	if _, err := campaign.Run(cfg); err != nil {
		fmt.Fprintf(os.Stderr, "campaign (instrumented, workers=%d batch=%d): %v\n", cfg.Workers, cfg.Batch, err)
		os.Exit(1)
	}
	snap := reg.Snapshot()
	prefix := "jvm." + cfg.RefSpec.Name + ".phase."
	var verifyNs, executeNs int64
	for _, p := range jvm.AllPhases() {
		sum := snap.Hist(prefix + p.String() + "_ns").Sum
		if p == jvm.PhaseLinking {
			verifyNs += sum
		} else {
			executeNs += sum
		}
	}
	return float64(verifyNs) / float64(tests) / 1e3, float64(executeNs) / float64(tests) / 1e3
}

// allocSite aggregates profile records by their innermost frame.
type allocSite struct {
	where   string
	objects int64
	bytes   int64
}

// reportAllocSites prints the top-n allocation sites by allocated
// object count, straight from runtime.MemProfile — no external pprof
// invocation. Records (one per unique stack) are folded by innermost
// frame, so a function allocating from many callers appears once.
func reportAllocSites(n int) {
	var recs []runtime.MemProfileRecord
	size, ok := runtime.MemProfile(nil, true)
	for !ok {
		recs = make([]runtime.MemProfileRecord, size+64)
		size, ok = runtime.MemProfile(recs, true)
	}
	recs = recs[:size]

	sites := map[string]*allocSite{}
	for i := range recs {
		stk := recs[i].Stack()
		if len(stk) == 0 {
			continue
		}
		frames := runtime.CallersFrames(stk)
		fr, _ := frames.Next()
		name := fr.Function
		if name == "" {
			if fn := runtime.FuncForPC(stk[0]); fn != nil {
				name = fn.Name()
			} else {
				name = fmt.Sprintf("pc=%#x", stk[0])
			}
		}
		where := fmt.Sprintf("%s (%s:%d)", name, filepath.Base(fr.File), fr.Line)
		s := sites[where]
		if s == nil {
			s = &allocSite{where: where}
			sites[where] = s
		}
		s.objects += recs[i].AllocObjects
		s.bytes += recs[i].AllocBytes
	}

	ranked := make([]*allocSite, 0, len(sites))
	for _, s := range sites {
		ranked = append(ranked, s)
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].objects != ranked[j].objects {
			return ranked[i].objects > ranked[j].objects
		}
		return ranked[i].where < ranked[j].where
	})
	if n > len(ranked) {
		n = len(ranked)
	}
	var total int64
	for _, s := range ranked {
		total += s.objects
	}
	fmt.Fprintf(os.Stderr, "top %d allocation sites (of %d, %d objects total):\n", n, len(ranked), total)
	for _, s := range ranked[:n] {
		pct := 0.0
		if total > 0 {
			pct = float64(s.objects) * 100 / float64(total)
		}
		fmt.Fprintf(os.Stderr, "  %12d objects %5.1f%% %12d B  %s\n", s.objects, pct, s.bytes, s.where)
	}
}
