// Command campaignbench measures campaign-engine throughput at several
// worker counts and writes the results as JSON (the `make bench`
// artifact BENCH_campaign.json). The workload is classfuzz[stbr] at the
// experiments package's default scale; because the engine is
// deterministic in everything but wall clock, every row of the sweep
// fuzzes the identical campaign.
//
// Usage:
//
//	campaignbench [-seeds N] [-iters N] [-seed N] [-workers 1,4,8]
//	              [-repeat N] [-out BENCH_campaign.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/campaign"
	"repro/internal/coverage"
	"repro/internal/jvm"
	"repro/internal/seedgen"
)

type row struct {
	Workers      int     `json:"workers"`
	Iterations   int     `json:"iterations"`
	Tests        int     `json:"tests"`
	MillisTotal  float64 `json:"millis_total"`
	ItersPerSec  float64 `json:"iters_per_sec"`
	MicrosPerGen float64 `json:"micros_per_gen"`
	MicrosTest   float64 `json:"micros_per_test"`
	Speedup      float64 `json:"speedup_vs_1"`
}

type report struct {
	Benchmark  string `json:"benchmark"`
	GoMaxProcs int    `json:"gomaxprocs"`
	NumCPU     int    `json:"numcpu"`
	Seeds      int    `json:"seeds"`
	Iterations int    `json:"iterations"`
	Repeat     int    `json:"repeat"`
	Rows       []row  `json:"rows"`
}

func main() {
	seedCount := flag.Int("seeds", 60, "seed corpus size")
	iters := flag.Int("iters", 400, "campaign iterations")
	seed := flag.Int64("seed", 1, "random seed")
	workersList := flag.String("workers", "1,4,8", "comma-separated worker counts to sweep")
	repeat := flag.Int("repeat", 3, "campaigns per worker count (best time wins)")
	out := flag.String("out", "BENCH_campaign.json", "output file")
	flag.Parse()

	var sweep []int
	for _, s := range strings.Split(*workersList, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "bad -workers entry %q\n", s)
			os.Exit(2)
		}
		sweep = append(sweep, n)
	}

	seeds := seedgen.Generate(seedgen.DefaultOptions(*seedCount, *seed))
	rep := report{
		Benchmark:  "campaign/classfuzz[stbr]+prefilter",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Seeds:      *seedCount,
		Iterations: *iters,
		Repeat:     *repeat,
	}

	var base float64
	for _, w := range sweep {
		cfg := campaign.Config{
			Algorithm:       campaign.Classfuzz,
			Criterion:       coverage.STBR,
			Seeds:           seeds,
			Iterations:      *iters,
			Rand:            *seed,
			RefSpec:         jvm.HotSpot9(),
			StaticPrefilter: true,
			Workers:         w,
		}
		best := time.Duration(0)
		var last *campaign.Result
		for r := 0; r < *repeat; r++ {
			start := time.Now()
			res, err := campaign.Run(cfg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "campaign (workers=%d): %v\n", w, err)
				os.Exit(1)
			}
			el := time.Since(start)
			if best == 0 || el < best {
				best = el
			}
			last = res
		}
		r := row{
			Workers:     w,
			Iterations:  *iters,
			Tests:       len(last.Test),
			MillisTotal: float64(best.Microseconds()) / 1000,
			ItersPerSec: float64(*iters) / best.Seconds(),
		}
		if n := len(last.Gen); n > 0 {
			r.MicrosPerGen = best.Seconds() / float64(n) * 1e6
		}
		if n := len(last.Test); n > 0 {
			r.MicrosTest = best.Seconds() / float64(n) * 1e6
		}
		if w == sweep[0] {
			base = r.ItersPerSec
		}
		if base > 0 {
			r.Speedup = r.ItersPerSec / base
		}
		rep.Rows = append(rep.Rows, r)
		fmt.Fprintf(os.Stderr, "workers=%d: %s, %.0f iters/sec, %d tests (%.2fx)\n",
			w, best.Round(time.Millisecond), r.ItersPerSec, r.Tests, r.Speedup)
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "marshal: %v\n", err)
		os.Exit(1)
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "write %s: %v\n", *out, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}
