// Command jvmdiff differentially tests .class files across the five
// simulated JVM implementations and prints each file's encoded outcome
// vector (Figure 3 of the paper).
//
// Usage:
//
//	jvmdiff [-shared-env jre7|jre8|jre9|classpath] [-v] file.class...
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/difftest"
	"repro/internal/rtlib"
	"repro/internal/triage"
)

func main() {
	sharedEnv := flag.String("shared-env", "", "bind all VMs to one library release (Definition 2 mode)")
	verbose := flag.Bool("v", false, "print the per-VM error details")
	doTriage := flag.Bool("triage", false, "classify each discrepancy (defect-indicative / policy-difference / compatibility)")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: jvmdiff [-shared-env rel] [-v] file.class...")
		os.Exit(2)
	}

	var runner *difftest.Runner
	switch *sharedEnv {
	case "":
		runner = difftest.NewStandardRunner()
	case "jre7":
		runner = difftest.NewSharedEnvRunner(rtlib.JRE7)
	case "jre8":
		runner = difftest.NewSharedEnvRunner(rtlib.JRE8)
	case "jre9":
		runner = difftest.NewSharedEnvRunner(rtlib.JRE9)
	case "classpath":
		runner = difftest.NewSharedEnvRunner(rtlib.Classpath)
	default:
		fmt.Fprintf(os.Stderr, "unknown release %q\n", *sharedEnv)
		os.Exit(2)
	}

	var triager *triage.Triager
	if *doTriage {
		triager = triage.New()
	}

	fmt.Printf("%-40s %-7s  %s\n", "classfile", "vector", "verdict")
	discrepancies := 0
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
			os.Exit(1)
		}
		v := runner.Run(data)
		verdict := "consistent"
		if v.Discrepant() {
			verdict = "DISCREPANCY"
			discrepancies++
			if triager != nil {
				rep := triager.Triage(data)
				verdict = fmt.Sprintf("DISCREPANCY (%s)", rep.Verdict)
			}
		}
		fmt.Printf("%-40s %-7s  %s\n", path, v.Key(), verdict)
		if *verbose {
			for i, name := range runner.Names() {
				fmt.Printf("    %-14s %s\n", name, v.Outcomes[i])
			}
			if triager != nil && v.Discrepant() {
				for _, n := range triager.Triage(data).Notes {
					fmt.Printf("    note: %s\n", n)
				}
			}
		}
	}
	fmt.Printf("%d of %d classfiles trigger discrepancies\n", discrepancies, flag.NArg())
}
