// Command jimpleasm assembles textual Jimple (the format classdump
// -jimple prints) into a classfile — the inverse tool, mirroring Soot's
// ability to read .jimple sources. Combined with jvmdiff it allows
// hand-writing discrepancy candidates:
//
//	jimpleasm -o M.class M.jimple && jvmdiff -v M.class
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/jimple"
)

func main() {
	out := flag.String("o", "", "output .class path (default: input with .class suffix)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: jimpleasm [-o out.class] file.jimple")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(1)
	}
	c, err := jimple.ParseClass(string(src))
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(1)
	}
	f, err := jimple.Lower(c)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lower: %v\n", err)
		os.Exit(1)
	}
	data, err := f.Bytes()
	if err != nil {
		fmt.Fprintf(os.Stderr, "serialise: %v\n", err)
		os.Exit(1)
	}
	path := *out
	if path == "" {
		path = strings.TrimSuffix(flag.Arg(0), ".jimple") + ".class"
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(1)
	}
	fmt.Printf("assembled %s (%d bytes) from %s\n", path, len(data), flag.Arg(0))
}
