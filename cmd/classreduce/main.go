// Command classreduce shrinks a discrepancy-triggering classfile with
// the hierarchical-delta-debugging reducer of §2.3, preserving the
// five-VM outcome vector.
//
// Usage:
//
//	classreduce [-o out.class] [-rounds N] file.class
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/classfile"
	"repro/internal/difftest"
	"repro/internal/jimple"
	"repro/internal/reduce"
)

func main() {
	out := flag.String("o", "", "write the reduced classfile here (default: print Jimple only)")
	rounds := flag.Int("rounds", 8, "maximum reduction rounds")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: classreduce [-o out.class] [-rounds N] file.class")
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(1)
	}
	f, err := classfile.Parse(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "parse: %v\n", err)
		os.Exit(1)
	}
	model, err := jimple.Lift(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lift: %v\n", err)
		os.Exit(1)
	}

	runner := difftest.NewStandardRunner()
	before := reduce.Size(model)
	res, err := reduce.Reduce(model, runner, reduce.Options{MaxRounds: *rounds})
	if err != nil {
		fmt.Fprintf(os.Stderr, "reduce: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("vector %s preserved; size %d -> %d elements (%d deletions, %d differential tests)\n",
		res.Vector, before, reduce.Size(res.Reduced), res.Deleted, res.Tests)
	fmt.Println()
	fmt.Print(jimple.Print(res.Reduced))

	if *out != "" {
		lowered, err := jimple.Lower(res.Reduced)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lower: %v\n", err)
			os.Exit(1)
		}
		bytes, err := lowered.Bytes()
		if err != nil {
			fmt.Fprintf(os.Stderr, "serialise: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*out, bytes, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "write: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s\n", *out)
	}
}
