// Command detlint runs the determinism linter (internal/lint) over
// package directories. The campaign/difftest engine's results must be
// a pure function of (seed, config); detlint flags the constructs that
// quietly break that — wall-clock reads, the global math/rand stream,
// and map-iteration-ordered emissions. See the internal/lint package
// doc for the rules and the //detlint:ok waiver syntax.
//
// Usage:
//
//	detlint dir [dir...]
//
// Exit codes:
//
//	0  no findings
//	1  findings reported, or a directory failed to parse
//	2  usage error (no directories)
package main

import (
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: detlint dir [dir...]")
		os.Exit(2)
	}
	total := 0
	for _, dir := range os.Args[1:] {
		findings, err := lint.Dir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "detlint: %s: %v\n", dir, err)
			os.Exit(1)
		}
		for _, f := range findings {
			fmt.Println(f)
		}
		total += len(findings)
	}
	if total > 0 {
		fmt.Fprintf(os.Stderr, "detlint: %d finding(s)\n", total)
		os.Exit(1)
	}
}
